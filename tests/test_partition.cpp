/**
 * @file
 * Tests for the interaction graph and the OEE partitioner.
 */
#include <gtest/gtest.h>

#include "circuits/qft.hpp"
#include "partition/interaction_graph.hpp"
#include "partition/mappers.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"

namespace {

using namespace autocomm;
using namespace autocomm::partition;

TEST(InteractionGraph, EdgeAccumulation)
{
    InteractionGraph g(3);
    g.add_edge(0, 1);
    g.add_edge(0, 1, 2);
    g.add_edge(1, 2);
    EXPECT_EQ(g.weight(0, 1), 3);
    EXPECT_EQ(g.weight(1, 0), 3);
    EXPECT_EQ(g.weight(0, 2), 0);
    EXPECT_EQ(g.degree(1), 4);
}

TEST(InteractionGraph, FromCircuitCountsMultiQubitGates)
{
    qir::Circuit c(3);
    c.h(0).cx(0, 1).cx(0, 1).cz(1, 2).ccx(0, 1, 2);
    const InteractionGraph g = InteractionGraph::from_circuit(c);
    EXPECT_EQ(g.weight(0, 1), 3); // 2 cx + ccx pair (0,1)
    EXPECT_EQ(g.weight(1, 2), 2); // cz + ccx pair (1,2)
    EXPECT_EQ(g.weight(0, 2), 1); // ccx pair (0,2)
}

TEST(InteractionGraph, CutWeight)
{
    InteractionGraph g(4);
    g.add_edge(0, 1, 5);
    g.add_edge(2, 3, 5);
    g.add_edge(1, 2, 1);
    EXPECT_EQ(g.cut_weight({0, 0, 1, 1}), 1);
    EXPECT_EQ(g.cut_weight({0, 1, 0, 1}), 11);
}

TEST(Oee, RecoversObviousClusters)
{
    // Two 4-cliques connected by a single edge, but interleaved in index
    // order so the contiguous start is bad.
    InteractionGraph g(8);
    const int a[4] = {0, 2, 4, 6}, b[4] = {1, 3, 5, 7};
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j) {
            g.add_edge(a[i], a[j], 10);
            g.add_edge(b[i], b[j], 10);
        }
    g.add_edge(0, 1, 1);

    const auto part = oee_partition(g, 2);
    EXPECT_EQ(g.cut_weight(part), 1);
    // All of cluster a on one side.
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(part[static_cast<std::size_t>(a[i])],
                  part[static_cast<std::size_t>(a[0])]);
}

TEST(Oee, KeepsPartitionsBalanced)
{
    InteractionGraph g(12);
    for (int i = 0; i < 12; ++i)
        for (int j = i + 1; j < 12; ++j)
            g.add_edge(i, j, 1 + (i * j) % 3);
    const auto part = oee_partition(g, 3);
    int counts[3] = {0, 0, 0};
    for (NodeId p : part) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, 3);
        ++counts[p];
    }
    EXPECT_EQ(counts[0], 4);
    EXPECT_EQ(counts[1], 4);
    EXPECT_EQ(counts[2], 4);
}

TEST(Oee, NeverWorseThanContiguous)
{
    const qir::Circuit qft = qir::decompose(circuits::make_qft(24));
    const InteractionGraph g = InteractionGraph::from_circuit(qft);
    std::vector<NodeId> contiguous(24);
    for (int q = 0; q < 24; ++q)
        contiguous[static_cast<std::size_t>(q)] = q / 6;
    const auto oee = oee_partition(g, 4);
    EXPECT_LE(g.cut_weight(oee), g.cut_weight(contiguous));
}

TEST(Oee, SingleNodeIsTrivial)
{
    InteractionGraph g(4);
    g.add_edge(0, 1);
    const auto part = oee_partition(g, 1);
    for (NodeId p : part)
        EXPECT_EQ(p, 0);
}

TEST(Oee, DeterministicAcrossRuns)
{
    InteractionGraph g(10);
    for (int i = 0; i < 10; ++i)
        g.add_edge(i, (i + 3) % 10, 1 + i % 4);
    EXPECT_EQ(oee_partition(g, 2), oee_partition(g, 2));
}

TEST(Mappers, RoundRobinStripes)
{
    const auto map = round_robin_map(6, 3);
    EXPECT_EQ(map.node_of(0), 0);
    EXPECT_EQ(map.node_of(1), 1);
    EXPECT_EQ(map.node_of(2), 2);
    EXPECT_EQ(map.node_of(3), 0);
}

TEST(Mappers, RandomIsBalancedAndSeeded)
{
    const auto a = random_map(20, 4, 9);
    const auto b = random_map(20, 4, 9);
    EXPECT_EQ(a.assignment(), b.assignment());
    std::vector<int> counts(4, 0);
    for (NodeId n : a.assignment())
        ++counts[static_cast<std::size_t>(n)];
    for (int c : counts)
        EXPECT_EQ(c, 5);
}

TEST(Mappers, ContiguousMatchesQubitMappingFactory)
{
    EXPECT_EQ(contiguous_map(9, 3).assignment(),
              hw::QubitMapping::contiguous(9, 3).assignment());
}

} // namespace
