/**
 * @file
 * Tests for the benchmark circuit generators: semantic checks on small
 * instances (unitary / simulation level) and the structural gate-count
 * scaling the paper's Table 2 relies on.
 */
#include <gtest/gtest.h>

#include "support/log.hpp"

#include <cmath>
#include <numbers>

#include "circuits/bv.hpp"
#include "circuits/library.hpp"
#include "circuits/mctr.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/rca.hpp"
#include "circuits/uccsd.hpp"
#include "qir/decompose.hpp"
#include "qir/unitary.hpp"
#include "support/rng.hpp"

namespace {

using namespace autocomm;
using namespace autocomm::circuits;
using qir::Circuit;
using qir::GateKind;

// ---------------- QFT ----------------

TEST(Qft, GateCountsMatchClosedForm)
{
    const int n = 20;
    const Circuit c = make_qft(n);
    EXPECT_EQ(c.count(GateKind::H), static_cast<std::size_t>(n));
    EXPECT_EQ(c.count(GateKind::CP),
              static_cast<std::size_t>(n * (n - 1) / 2));
}

TEST(Qft, MatchesDftMatrixOnThreeQubits)
{
    // QFT (without final swaps) maps |j> to the DFT column in bit-reversed
    // order; with swaps it is the DFT exactly.
    QftOptions opts;
    opts.with_final_swaps = true;
    const Circuit c = make_qft(3, opts);
    const qir::CMatrix u = qir::circuit_unitary(c);
    const std::size_t dim = 8;
    qir::CMatrix dft(dim, dim);
    const double s = 1.0 / std::sqrt(8.0);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t cc = 0; cc < dim; ++cc)
            dft.at(r, cc) = std::polar(
                s, 2.0 * std::numbers::pi *
                       static_cast<double>(r * cc) / 8.0);
    EXPECT_TRUE(u.equal_up_to_phase(dft));
}

TEST(Qft, ApproximationDropsSmallRotations)
{
    QftOptions opts;
    opts.approx_cutoff = 2;
    const Circuit c = make_qft(8, opts);
    for (const auto& g : c)
        if (g.kind == GateKind::CP) {
            EXPECT_LE(std::abs(g.qs[0] - g.qs[1]), 2);
        }
}

TEST(Qft, DecomposesToCxBasis)
{
    const Circuit d = qir::decompose(make_qft(10));
    EXPECT_EQ(d.count(GateKind::CX), static_cast<std::size_t>(2 * 45));
}

// ---------------- BV ----------------

TEST(Bv, OracleComputesHiddenString)
{
    // For hidden string s, BV outputs |s> on the input register.
    const std::vector<bool> hidden = {true, false, true, true};
    const Circuit c = make_bv_with_string(5, hidden);
    qir::Statevector sv(5);
    support::Rng rng(0);
    sv.run(c, rng);
    for (int q = 0; q < 4; ++q)
        EXPECT_NEAR(sv.prob_one(q), hidden[static_cast<std::size_t>(q)] ? 1 : 0,
                    1e-9)
            << "qubit " << q;
}

TEST(Bv, GateCountMatchesStringWeight)
{
    const std::vector<bool> hidden = {true, true, false, true};
    const Circuit c = make_bv_with_string(5, hidden);
    EXPECT_EQ(c.count(GateKind::CX), 3u);
    EXPECT_EQ(c.count(GateKind::H), 2u * 5u);
    EXPECT_EQ(c.count(GateKind::X), 1u);
}

TEST(Bv, SeededGeneratorIsDeterministic)
{
    const Circuit a = make_bv(50, 7);
    const Circuit b = make_bv(50, 7);
    EXPECT_EQ(a.size(), b.size());
    const Circuit c = make_bv(50, 8);
    // Different seeds almost surely give different strings.
    EXPECT_NE(a.count(GateKind::CX), 0u);
    EXPECT_TRUE(a.size() != c.size() ||
                a.count(GateKind::CX) != c.count(GateKind::CX) ||
                true); // count may coincide; presence check suffices
}

TEST(Bv, DensityLandsNearTarget)
{
    const Circuit c = make_bv(301, 7, 0.66);
    const double density =
        static_cast<double>(c.count(GateKind::CX)) / 300.0;
    EXPECT_NEAR(density, 0.66, 0.1);
}

// ---------------- QAOA ----------------

TEST(Qaoa, RandomMaxcutHasRequestedEdges)
{
    const MaxCutInstance inst = random_maxcut(12, 30, 3);
    EXPECT_EQ(inst.edges.size(), 30u);
    for (const auto& [a, b] : inst.edges) {
        EXPECT_LT(a, b);
        EXPECT_LT(b, 12);
        EXPECT_GE(a, 0);
    }
}

TEST(Qaoa, RejectsImpossibleEdgeCount)
{
    EXPECT_THROW(random_maxcut(4, 100, 1), support::UserError);
}

TEST(Qaoa, PaperDensityIsPointTwoNSquared)
{
    const MaxCutInstance inst = paper_density_maxcut(100, 5);
    EXPECT_EQ(inst.edges.size(), 2000u);
}

TEST(Qaoa, CircuitStructure)
{
    const MaxCutInstance inst = random_maxcut(8, 10, 11);
    QaoaOptions opts;
    opts.layers = 2;
    const Circuit c = make_qaoa(inst, opts);
    EXPECT_EQ(c.count(GateKind::RZZ), 20u);
    EXPECT_EQ(c.count(GateKind::H), 8u);
    EXPECT_EQ(c.count(GateKind::RX), 16u);
}

TEST(Qaoa, CostLayerIsDiagonal)
{
    // Without mixer and H layer the circuit is diagonal.
    const MaxCutInstance inst = random_maxcut(4, 4, 2);
    QaoaOptions opts;
    opts.initial_h_layer = false;
    opts.mixer_layer = false;
    const qir::CMatrix u = qir::circuit_unitary(make_qaoa(inst, opts));
    for (std::size_t r = 0; r < u.rows(); ++r)
        for (std::size_t cc = 0; cc < u.cols(); ++cc)
            if (r != cc) {
                EXPECT_NEAR(std::abs(u.at(r, cc)), 0.0, 1e-12);
            }
}

// ---------------- RCA ----------------

TEST(Rca, AddsCorrectlyOnAllSmallInputs)
{
    // 2-bit adder: 6 qubits. Verify b <- a+b for every input pair.
    const int m = 2;
    const Circuit adder = make_rca(2 * m + 2);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            Circuit c(6);
            // Layout: c0, b0, a0, b1, a1, z.
            if (b & 1)
                c.x(1);
            if (a & 1)
                c.x(2);
            if (b & 2)
                c.x(3);
            if (a & 2)
                c.x(4);
            c.append(adder);
            qir::Statevector sv(6);
            support::Rng rng(0);
            sv.run(c, rng);
            const int sum = a + b;
            EXPECT_NEAR(sv.prob_one(1), sum & 1 ? 1 : 0, 1e-9)
                << a << "+" << b;
            EXPECT_NEAR(sv.prob_one(3), sum & 2 ? 1 : 0, 1e-9)
                << a << "+" << b;
            EXPECT_NEAR(sv.prob_one(5), sum & 4 ? 1 : 0, 1e-9)
                << a << "+" << b;
            // Operand a must be preserved.
            EXPECT_NEAR(sv.prob_one(2), a & 1 ? 1 : 0, 1e-9);
            EXPECT_NEAR(sv.prob_one(4), a & 2 ? 1 : 0, 1e-9);
        }
    }
}

TEST(Rca, CxCountMatchesPaperFormula)
{
    // 16m+1 CX after decomposition (m = operand bits): 785 at 100 qubits.
    const Circuit d = qir::decompose(make_rca(100));
    EXPECT_EQ(d.count(GateKind::CX), 785u);

    const Circuit d200 = qir::decompose(make_rca(200));
    EXPECT_EQ(d200.count(GateKind::CX), 1585u);
}

TEST(Rca, RejectsOddQubitCount)
{
    EXPECT_THROW(make_rca(7), support::UserError);
}

// ---------------- MCTR ----------------

TEST(Mctr, ImplementsMultiControlledXOnSmallRegister)
{
    const int n = 7;
    const Circuit c = make_mctr(n);
    // Reference: C^{n-2}X with controls 0..n-3, target n-1.
    const std::size_t dim = std::size_t{1} << n;
    qir::CMatrix ref(dim, dim);
    for (std::size_t in = 0; in < dim; ++in) {
        bool all = true;
        for (int ctl = 0; ctl <= n - 3; ++ctl)
            all &= ((in >> (n - 1 - ctl)) & 1) != 0;
        std::size_t out = in;
        if (all)
            out = in ^ std::size_t{1};
        ref.at(out, in) = 1.0;
    }
    EXPECT_TRUE(qir::circuit_unitary(c).equal_up_to_phase(ref));
}

TEST(Mctr, CxCountMatchesPaperTable2)
{
    EXPECT_EQ(qir::decompose(make_mctr(100)).count(GateKind::CX), 4560u);
    EXPECT_EQ(qir::decompose(make_mctr(200)).count(GateKind::CX), 9360u);
    EXPECT_EQ(qir::decompose(make_mctr(300)).count(GateKind::CX), 14160u);
}

TEST(Mctr, ToffoliCountMatchesClosedForm)
{
    for (int n : {20, 50, 100}) {
        const Circuit c = make_mctr(n);
        EXPECT_EQ(c.count(GateKind::CCX), mctr_expected_toffolis(n))
            << "n=" << n;
    }
}

// ---------------- UCCSD ----------------

TEST(Uccsd, StructureCounts)
{
    // 4 spin-orbitals, 2 occupied: 4 singles (2 strings each),
    // 1 double (8 strings).
    const Circuit c = make_uccsd(4);
    // Each string contributes exactly one RZ core.
    EXPECT_EQ(c.count(GateKind::RZ), 4u * 2u + 1u * 8u);
    // Hartree-Fock preparation X gates.
    EXPECT_EQ(c.count(GateKind::X), 2u);
}

TEST(Uccsd, PreservesParticleNumberOnReferenceState)
{
    // The UCCSD ansatz conserves particle number: simulate and check the
    // expected total occupation stays at the electron count.
    const Circuit c = make_uccsd(4);
    qir::Statevector sv(4);
    support::Rng rng(0);
    sv.run(c, rng);
    double occupation = 0.0;
    for (int q = 0; q < 4; ++q)
        occupation += sv.prob_one(q);
    EXPECT_NEAR(occupation, 2.0, 1e-6);
}

TEST(Uccsd, TrotterStepsScaleLinearly)
{
    UccsdOptions one, two;
    two.trotter_steps = 2;
    const std::size_t g1 = make_uccsd(6, one).size();
    const std::size_t g2 = make_uccsd(6, two).size();
    // 3 occupied X-prep gates are shared; the rest doubles.
    EXPECT_EQ(g2 - 3, 2 * (g1 - 3));
}

// ---------------- Library ----------------

TEST(Library, PaperSuiteHas18Rows)
{
    const auto suite = paper_suite();
    EXPECT_EQ(suite.size(), 18u);
    EXPECT_EQ(suite[0].label(), "MCTR-100-10");
    EXPECT_EQ(suite.back().label(), "UCCSD-16-8");
}

TEST(Library, MakeBenchmarkProducesRightWidth)
{
    for (const auto& spec : small_suite()) {
        const Circuit c = make_benchmark(spec);
        EXPECT_EQ(c.num_qubits(), spec.num_qubits) << spec.label();
        EXPECT_GT(c.size(), 0u) << spec.label();
    }
}

TEST(Library, Figure4ProgramShape)
{
    const Circuit c = figure4_program();
    EXPECT_EQ(c.num_qubits(), 7);
    const auto mapping = figure4_mapping();
    EXPECT_EQ(mapping.size(), 7u);
    // Hub qubit q2 participates in several remote gates.
    std::size_t q2_remote = 0;
    for (const auto& g : c)
        if (g.num_qubits == 2 && g.acts_on(2) &&
            mapping[static_cast<std::size_t>(g.qs[0])] !=
                mapping[static_cast<std::size_t>(g.qs[1])])
            ++q2_remote;
    EXPECT_GE(q2_remote, 4u);
}

} // namespace
