/**
 * @file
 * Integration tests for the full AutoComm pipeline, including end-to-end
 * physical lowering: the compiled + lowered program must implement exactly
 * the logical circuit, with all communication realized through Cat/TP
 * protocols on communication qubits.
 */
#include <gtest/gtest.h>

#include "support/log.hpp"

#include "autocomm/lower.hpp"
#include "autocomm/pipeline.hpp"
#include "circuits/library.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/rca.hpp"
#include "circuits/uccsd.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "qir/unitary.hpp"
#include "support/rng.hpp"

namespace {

using namespace autocomm;
using namespace autocomm::pass;
using qir::Circuit;
using support::Rng;

hw::Machine
machine(int nodes, int per_node)
{
    hw::Machine m;
    m.num_nodes = nodes;
    m.qubits_per_node = per_node;
    return m;
}

/**
 * End-to-end check: compile, lower to the physical machine, simulate with
 * random product-state inputs across measurement branches, and compare to
 * the logical circuit applied directly at the data slots.
 */
void
check_lowering(const Circuit& logical, const hw::QubitMapping& map,
               const hw::Machine& m, std::uint64_t seed)
{
    const CompileResult r = compile(logical, map, m);
    const Circuit phys = lower_to_physical(logical, map, m, r);
    const Circuit ref = lower_reference(logical, map, m);

    Rng rng(seed);
    Circuit prep(phys.num_qubits(), 0);
    for (QubitId q = 0; q < logical.num_qubits(); ++q) {
        const comm::PhysicalLayout layout(m, map);
        prep.u3(layout.data(q), rng.next_double() * 3,
                rng.next_double() * 6, rng.next_double() * 6);
    }

    qir::Statevector actual(phys.num_qubits(), 0);
    actual.run(prep, rng);
    actual.run(phys, rng);

    qir::Statevector expect(phys.num_qubits(), 0);
    Rng rng2(seed + 1000);
    expect.run(prep, rng2);
    expect.run(ref, rng2);

    EXPECT_TRUE(actual.equal_up_to_phase(expect))
        << "lowering mismatch (seed " << seed << ")";
}

TEST(Pipeline, RejectsMismatchedMapping)
{
    Circuit c(4);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    EXPECT_THROW(compile(c, map, machine(2, 3)), support::UserError);
}

TEST(Pipeline, CompileProducesConsistentResult)
{
    const Circuit c = qir::decompose(circuits::make_qft(12));
    const auto map = hw::QubitMapping::contiguous(12, 3);
    const CompileResult r = compile(c, map, machine(3, 4));
    EXPECT_EQ(r.reordered.size(), c.size());
    EXPECT_EQ(r.block_start.size(), r.blocks.size());
    EXPECT_EQ(r.metrics.remote_gates, map.count_remote(c));
    EXPECT_GT(r.schedule.makespan, 0.0);
    // Reordering preserves semantics.
    EXPECT_TRUE(qir::circuits_equivalent(c, r.reordered));
}

TEST(Pipeline, LoweringMatchesLogical_Figure4)
{
    const Circuit c = circuits::figure4_program();
    std::vector<NodeId> nodes;
    for (int n : circuits::figure4_mapping())
        nodes.push_back(n);
    const hw::QubitMapping map{nodes};
    // 7 logical + 3*2 comm qubits = 13 physical: still simulable.
    hw::Machine m = machine(3, 3);
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        check_lowering(c, map, m, seed);
}

TEST(Pipeline, LoweringMatchesLogical_SmallQft)
{
    const Circuit c = qir::decompose(circuits::make_qft(5));
    const auto map = hw::QubitMapping::contiguous(5, 2);
    // 5 data + 4 comm = 9 physical qubits.
    hw::Machine m = machine(2, 3);
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        check_lowering(c, map, m, seed);
}

TEST(Pipeline, LoweringMatchesLogical_RandomCircuits)
{
    Rng gen(77);
    for (int trial = 0; trial < 6; ++trial) {
        Circuit c(5);
        for (int g = 0; g < 30; ++g) {
            const QubitId a = static_cast<QubitId>(gen.next_below(5));
            QubitId b = static_cast<QubitId>(gen.next_below(5));
            while (b == a)
                b = static_cast<QubitId>(gen.next_below(5));
            switch (gen.next_below(6)) {
              case 0: c.cx(a, b); break;
              case 1: c.rz(a, gen.next_double()); break;
              case 2: c.t(a); break;
              case 3: c.cx(b, a); break;
              case 4: c.rx(a, gen.next_double()); break;
              default: c.h(a); break;
            }
        }
        const auto map = hw::QubitMapping::contiguous(5, 2);
        check_lowering(c, map, machine(2, 3), 10 + trial);
    }
}

TEST(Pipeline, LoweringMatchesLogical_SmallQaoa)
{
    const auto inst = circuits::random_maxcut(5, 6, 3);
    const Circuit c = qir::decompose(circuits::make_qaoa(inst));
    const auto map = hw::QubitMapping::contiguous(5, 2);
    check_lowering(c, map, machine(2, 3), 5);
}

TEST(Pipeline, LoweringMatchesLogical_TinyAdder)
{
    const Circuit c = qir::decompose(circuits::make_rca(4));
    const auto map = hw::QubitMapping::contiguous(4, 2);
    check_lowering(c, map, machine(2, 2), 21);
}

TEST(Pipeline, LoweringMatchesLogical_TinyUccsd)
{
    // UCCSD exercises the nested-block path: its parity ladders interleave
    // bursts of adjacent node boundaries.
    circuits::UccsdOptions opts;
    opts.seed = 3;
    const Circuit c = qir::decompose(circuits::make_uccsd(4, opts));
    const auto map = hw::QubitMapping::contiguous(4, 2);
    check_lowering(c, map, machine(2, 2), 31);
}

TEST(Pipeline, NestedBlocksLowerCorrectly)
{
    // Hand-built nesting chain: bursts on (q0,node1) with a complete
    // (q2,node2) burst inside, itself enclosing local work.
    Circuit c(6);
    c.h(0).cx(0, 2).t(4).cx(2, 4).h(4).cx(2, 4).cx(0, 2).cx(0, 3);
    const auto map = hw::QubitMapping::contiguous(6, 3);
    check_lowering(c, map, machine(3, 2), 41);
}

TEST(Pipeline, OeeMappingReducesCommsVsRoundRobinStriping)
{
    const Circuit c = qir::decompose(circuits::make_qft(16));
    const auto oee = partition::oee_map(c, 4);
    hw::Machine m = machine(4, 4);
    oee.validate(m);
    const auto r_oee = compile(c, oee, m);
    // Against an adversarial striped mapping.
    std::vector<NodeId> striped(16);
    for (int q = 0; q < 16; ++q)
        striped[static_cast<std::size_t>(q)] = q % 4;
    const auto r_stripe = compile(c, hw::QubitMapping(striped), m);
    EXPECT_LE(r_oee.metrics.remote_gates, r_stripe.metrics.remote_gates);
}

TEST(Pipeline, AblationOrderingHolds)
{
    // full <= cat-only <= sparse in communication count.
    const Circuit c = qir::decompose(circuits::make_qft(16));
    const auto map = hw::QubitMapping::contiguous(16, 4);
    hw::Machine m = machine(4, 4);

    const auto full = compile(c, map, m);

    CompileOptions cat_only;
    cat_only.assign.allow_tp = false;
    const auto cat = compile(c, map, m, cat_only);

    CompileOptions sparse;
    sparse.aggregate.use_commutation = false;
    const auto single = compile(c, map, m, sparse);

    EXPECT_LE(full.metrics.total_comms, cat.metrics.total_comms);
    EXPECT_LE(cat.metrics.total_comms, single.metrics.total_comms);
    EXPECT_EQ(single.metrics.total_comms, map.count_remote(c));
}

TEST(Pipeline, DeterministicEndToEnd)
{
    const Circuit c = qir::decompose(circuits::make_qft(10));
    const auto map = hw::QubitMapping::contiguous(10, 2);
    const auto a = compile(c, map, machine(2, 5));
    const auto b = compile(c, map, machine(2, 5));
    EXPECT_EQ(a.metrics.total_comms, b.metrics.total_comms);
    EXPECT_DOUBLE_EQ(a.schedule.makespan, b.schedule.makespan);
}

} // namespace
