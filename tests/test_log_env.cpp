/**
 * @file
 * Tests for the AUTOCOMM_LOG_LEVEL environment toggle: name parsing,
 * re-initialization from the environment, and robustness to garbage
 * values. (The ctest harness itself relies on this toggle — CMake sets
 * AUTOCOMM_LOG_LEVEL=warn on every registered test.)
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/log.hpp"

namespace {

using namespace autocomm::support;

/** Restore the ambient level and env var around each test. */
class LogEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saved_level_ = log_level();
        const char* v = std::getenv("AUTOCOMM_LOG_LEVEL");
        saved_env_ = v != nullptr ? std::optional<std::string>(v)
                                  : std::nullopt;
    }

    void TearDown() override
    {
        if (saved_env_)
            ::setenv("AUTOCOMM_LOG_LEVEL", saved_env_->c_str(), 1);
        else
            ::unsetenv("AUTOCOMM_LOG_LEVEL");
        set_log_level(saved_level_);
    }

  private:
    LogLevel saved_level_ = LogLevel::Info;
    std::optional<std::string> saved_env_;
};

TEST_F(LogEnvTest, ParseAcceptsAllLevelsCaseInsensitively)
{
    EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
    EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
    EXPECT_EQ(parse_log_level("WARN"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("quiet"), LogLevel::Quiet);
    EXPECT_EQ(parse_log_level("none"), LogLevel::Quiet);
    EXPECT_EQ(parse_log_level("loud"), std::nullopt);
    EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST_F(LogEnvTest, EnvVariableOverridesLevel)
{
    ::setenv("AUTOCOMM_LOG_LEVEL", "quiet", 1);
    EXPECT_EQ(init_log_level_from_env(), LogLevel::Quiet);
    EXPECT_EQ(log_level(), LogLevel::Quiet);

    ::setenv("AUTOCOMM_LOG_LEVEL", "DEBUG", 1);
    EXPECT_EQ(init_log_level_from_env(), LogLevel::Debug);
    EXPECT_EQ(log_level(), LogLevel::Debug);
}

TEST_F(LogEnvTest, UnsetOrInvalidEnvKeepsCurrentLevel)
{
    set_log_level(LogLevel::Warn);
    ::unsetenv("AUTOCOMM_LOG_LEVEL");
    EXPECT_EQ(init_log_level_from_env(), LogLevel::Warn);

    ::setenv("AUTOCOMM_LOG_LEVEL", "garbage", 1);
    EXPECT_EQ(init_log_level_from_env(), LogLevel::Warn);
    EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST_F(LogEnvTest, CtestHarnessExportsWarnLevel)
{
    // The CMake test registration sets AUTOCOMM_LOG_LEVEL=warn, and the
    // static initializer in log.cpp must have applied it before main().
    const char* v = std::getenv("AUTOCOMM_LOG_LEVEL");
    if (v != nullptr && std::string(v) == "warn")
        EXPECT_EQ(log_level(), LogLevel::Warn);
    else
        GTEST_SKIP() << "not running under the ctest environment";
}

} // namespace
