/**
 * @file
 * Tests for the structured decision-event API (src/obs/decision):
 *
 *  - disabled mode is a true no-op — no events, no counters, and zero
 *    heap allocations (pinned with a counting global operator new);
 *  - explain_json() parses back with the cache's own JSON parser and
 *    carries the documented schema (totals / cells / global buckets,
 *    bounded newest-first payload samples);
 *  - flight-recorder ring rotation keeps the newest decision payloads
 *    while the per-verdict counts stay exact (counter-backed);
 *  - per-cell decision counts are identical at any sweep thread count
 *    for the deterministic categories (everything except the
 *    speculation-only aggregate.spec / aggregate.merge "rescore");
 *  - one pinned-payload test per instrumented layer: aggregation
 *    (burst accept), scheduler (scheme choice + purification rounds),
 *    multilevel (FM apply with its gain), routing (max-fidelity vs BFS
 *    detour with both route strings).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "autocomm/pipeline.hpp"
#include "autocomm/slots.hpp"
#include "cache/json.hpp"
#include "circuits/library.hpp"
#include "driver/sweep.hpp"
#include "hw/machine.hpp"
#include "multilevel/cost.hpp"
#include "multilevel/refine.hpp"
#include "obs/decision.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "partition/interaction_graph.hpp"
#include "qir/circuit.hpp"

// Counting global allocator: proves the disabled decision path never
// touches the heap. Safe here because CMake builds one binary per test
// file, so no other test sees this override. GCC cannot see that the
// replaced new/delete below are a matched malloc/free pair once they
// inline into callers, so silence its mismatch heuristic for this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::size_t> g_allocs{0};
} // namespace

void*
operator new(std::size_t n)
{
    ++g_allocs;
    if (void* p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace autocomm;
using cache::Json;

/** Wipe all recorded obs state and set the enabled flag (see
 * test_obs.cpp — tests share one process-wide registry/buffer). */
void
reset_obs(bool enable)
{
    obs::set_enabled(enable);
    obs::set_ring_capacity(0);
    obs::reset();
    obs::Registry::instance().reset();
}

/** Parse @p text with the cache's JSON parser, failing the test on a
 * parse error. */
Json
parse_json(const std::string& text)
{
    std::string error;
    std::optional<Json> doc = Json::parse(text, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return doc.has_value() ? *doc : Json::object();
}

// ------------------------------------------------------------- disabled

TEST(DecisionDisabled, RecordsNothingAndAllocatesNothing)
{
    reset_obs(false);
    const std::size_t before = g_allocs.load();
    for (int i = 0; i < 10'000; ++i)
        obs::decision("noop.cat", "skip", obs::arg("i", i),
                      obs::arg("x", 1.5));
    const std::size_t after = g_allocs.load();
    EXPECT_EQ(after, before);
    EXPECT_TRUE(obs::collect_events().empty());
    EXPECT_EQ(obs::Registry::instance().find_counter(
                  "decision.noop.cat.skip"),
              nullptr);
}

// ------------------------------------------------------ explain schema

TEST(DecisionExplain, JsonParsesBackWithTotalsCellsAndSamples)
{
    reset_obs(true);
    obs::decision("test.cat", "yes", obs::arg("n", 7),
                  obs::arg("x", 0.5), obs::arg("s", "hello"));
    {
        obs::CellScope cell("cell-A");
        obs::decision("test.cat", "no", obs::arg("n", 1));
        obs::decision("test.cat", "no", obs::arg("n", 2));
    }
    obs::set_enabled(false);

    const Json doc = parse_json(obs::explain_json(/*top_n=*/1));
    EXPECT_EQ(doc.at("decisions").to_uint(), 3u);

    const Json& totals = doc.at("totals").at("test.cat");
    EXPECT_EQ(totals.at("yes").to_uint(), 1u);
    EXPECT_EQ(totals.at("no").to_uint(), 2u);

    // The scoped bucket: both "no" decisions, one (the newest) sampled.
    const Json& cell =
        doc.at("cells").at("cell-A").at("test.cat").at("no");
    EXPECT_EQ(cell.at("count").to_uint(), 2u);
    ASSERT_EQ(cell.at("samples").items().size(), 1u);
    const Json& newest = cell.at("samples").items()[0];
    EXPECT_EQ(newest.at("verdict").to_string(), "no");
    EXPECT_EQ(newest.at("n").to_int(), 2);
    EXPECT_GE(newest.at("t_ms").to_double(), 0.0);

    // The unscoped remainder lands in "global" with its typed payload.
    const Json& global = doc.at("global").at("test.cat").at("yes");
    EXPECT_EQ(global.at("count").to_uint(), 1u);
    ASSERT_EQ(global.at("samples").items().size(), 1u);
    const Json& sample = global.at("samples").items()[0];
    EXPECT_EQ(sample.at("n").to_int(), 7);
    EXPECT_DOUBLE_EQ(sample.at("x").to_double(), 0.5);
    EXPECT_EQ(sample.at("s").to_string(), "hello");
}

// ----------------------------------------------------------- ring mode

TEST(DecisionRing, RotationKeepsNewestPayloadsAndExactCounts)
{
    reset_obs(true);
    obs::set_ring_capacity(8);
    for (int i = 0; i < 100; ++i)
        obs::decision("ring.cat", "spin", obs::arg("i", i));
    obs::set_enabled(false);

    // Counts come from counters, so rotation never loses them.
    const obs::Counter* c =
        obs::Registry::instance().find_counter("decision.ring.cat.spin");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 100u);
    EXPECT_LE(obs::collect_events().size(), 8u);

    // The sampled payloads are the newest events, newest last.
    const Json doc = parse_json(obs::explain_json(/*top_n=*/3));
    const Json& bucket = doc.at("global").at("ring.cat").at("spin");
    EXPECT_EQ(bucket.at("count").to_uint(), 100u);
    const std::vector<Json>& samples = bucket.at("samples").items();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].at("i").to_int(), 97);
    EXPECT_EQ(samples[1].at("i").to_int(), 98);
    EXPECT_EQ(samples[2].at("i").to_int(), 99);

    obs::set_ring_capacity(0);
}

// -------------------------------------------------- layer: aggregation

TEST(DecisionLayers, AggregationBurstAcceptCarriesMemberCounts)
{
    reset_obs(true);
    // Two CX sharing hub qubit 0 against node 1: one burst of 2 members.
    qir::Circuit c(4);
    c.cx(0, 2);
    c.cx(0, 3);
    const auto map = hw::QubitMapping::contiguous(4, 2);
    const hw::Machine m = hw::Machine::homogeneous(2, 2);
    (void)pass::compile(c, map, m);
    obs::set_enabled(false);

    const Json doc = parse_json(obs::explain_json());
    const Json& accept =
        doc.at("global").at("aggregate.burst").at("accept");
    EXPECT_GE(accept.at("count").to_uint(), 1u);
    bool found_pair = false;
    for (const Json& s : accept.at("samples").items())
        if (s.at("members").to_int() == 2) {
            found_pair = true;
            EXPECT_EQ(s.at("hub").to_int(), 0);
            EXPECT_EQ(s.at("rnode").to_int(), 1);
        }
    EXPECT_TRUE(found_pair);
}

// ---------------------------------------------------- layer: scheduler

TEST(DecisionLayers, SchedulerSchemeAndPurifyPayloads)
{
    // Noisy 3-ring with one degraded fiber: every pair purifies, and
    // the plan cache notes the rounds it chose against the target.
    hw::Machine m = hw::Machine::homogeneous(3, 2, hw::Topology::Ring);
    m.link.fidelity = 0.99;
    m.link.set_link_fidelity(0, 2, 0.55);
    m.purify.target_fidelity = 0.99;
    m.build_routing();
    ASSERT_EQ(m.hops(0, 2), 2);

    reset_obs(true);
    qir::Circuit c(6);
    c.cx(0, 4); // nodes 0 and 2: the 2-hop pair
    const auto map = hw::QubitMapping::contiguous(6, 3);
    (void)pass::compile(c, map, m);
    obs::set_enabled(false);

    const Json doc = parse_json(obs::explain_json());

    // Scheme choice: the lone remote gate is a single-member Cat block.
    const Json& cat = doc.at("global").at("schedule.scheme").at("cat");
    EXPECT_EQ(cat.at("count").to_uint(), 1u);
    const Json& scheme = cat.at("samples").items().at(0);
    EXPECT_EQ(scheme.at("pattern").to_string(), "single");
    EXPECT_EQ(scheme.at("members").to_int(), 1);
    EXPECT_EQ(scheme.at("cat_cost").to_int(), 1);
    EXPECT_EQ(scheme.at("tp_cost").to_int(), 2);

    // Purification: the 2-hop plan needs rounds to reach the target.
    const Json& purified =
        doc.at("global").at("schedule.purify").at("purified");
    EXPECT_GE(purified.at("count").to_uint(), 1u);
    bool found_pair = false;
    for (const Json& s : purified.at("samples").items())
        if (s.at("a").to_int() == 0 && s.at("b").to_int() == 2) {
            found_pair = true;
            EXPECT_EQ(s.at("hops").to_int(), 2);
            EXPECT_GE(s.at("rounds").to_int(), 1);
            EXPECT_DOUBLE_EQ(s.at("target").to_double(), 0.99);
            EXPECT_GE(s.at("fidelity").to_double(), 0.99);
        }
    EXPECT_TRUE(found_pair);

    // The GP-TP baseline shares the plan math through its own cache but
    // must not note decisions — the count is the scheduler's alone.
    const obs::Counter* raw = obs::Registry::instance().find_counter(
        "decision.schedule.purify.purified");
    ASSERT_NE(raw, nullptr);
    EXPECT_EQ(raw->value(), purified.at("count").to_uint());
}

// ---------------------------------------------------- layer: multilevel

TEST(DecisionLayers, MultilevelFmApplyCarriesGain)
{
    reset_obs(true);
    // Two natural clusters {0,1} and {2,3} start interleaved: FM must
    // commit at least one profitable move or swap to fix the cut.
    partition::InteractionGraph g(4);
    g.add_edge(0, 1, 5);
    g.add_edge(2, 3, 5);
    g.add_edge(1, 2, 1);
    std::vector<NodeId> part = {0, 1, 0, 1};
    const std::vector<int> vw = {1, 1, 1, 1};
    const std::vector<int> caps = {2, 2};
    const multilevel::CostModel cost = multilevel::CostModel::flat(2);
    const multilevel::RefineStats stats =
        multilevel::refine(g, vw, caps, cost, part);
    obs::set_enabled(false);
    ASSERT_GE(stats.moves, 1u);

    const Json doc = parse_json(obs::explain_json());
    const Json& apply = doc.at("global").at("multilevel.fm").at("apply");
    EXPECT_EQ(apply.at("count").to_uint(), stats.moves);
    for (const Json& s : apply.at("samples").items()) {
        EXPECT_GT(s.at("gain").to_double(), 0.0);
        EXPECT_GE(s.at("vertex").to_int(), 0);
        EXPECT_GE(s.at("round").to_int(), 0);
    }
}

// ------------------------------------------------------- layer: routing

TEST(DecisionLayers, RoutingDetourRecordsBothRouteStrings)
{
    reset_obs(true);
    // Triangle with a degraded 0-2 fiber: max-fidelity routing detours
    // that one pair through node 1 and keeps the other two direct.
    hw::Machine m = hw::Machine::homogeneous(3, 2, hw::Topology::Ring);
    m.link.fidelity = 0.99;
    m.link.set_link_fidelity(0, 2, 0.55);
    m.build_routing();
    obs::set_enabled(false);
    ASSERT_EQ(m.hops(0, 2), 2);

    const Json doc = parse_json(obs::explain_json());
    const Json& path = doc.at("global").at("route.path");
    EXPECT_EQ(path.at("minimal").at("count").to_uint(), 2u);
    const Json& detour = path.at("detour");
    EXPECT_EQ(detour.at("count").to_uint(), 1u);
    const Json& s = detour.at("samples").items().at(0);
    EXPECT_EQ(s.at("a").to_int(), 0);
    EXPECT_EQ(s.at("b").to_int(), 2);
    EXPECT_EQ(s.at("bfs").to_string(), "0-2");
    EXPECT_EQ(s.at("chosen").to_string(), "0-1-2");
    EXPECT_EQ(s.at("extra_hops").to_int(), 1);
}

// --------------------------------------------------------- determinism

/** True for the decision counters whose counts may legitimately depend
 * on the thread count: speculative-scan events never fire serially, and
 * "rescore" marks dirty re-evaluations of the parallel merge pass. */
bool
thread_dependent(const std::string& counter)
{
    return counter.rfind("decision.aggregate.spec.", 0) == 0 ||
           counter == "decision.aggregate.merge.rescore";
}

TEST(DecisionDeterminism, PerCellCountsIdenticalAcrossThreadCounts)
{
    driver::SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {12};
    grid.node_counts = {2, 4};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Star};
    grid.link_fidelities = {0.95};
    grid.target_fidelities = {0.99};
    grid.link_bandwidths = {2};
    grid.link_fidelity_overrides = {{0, 1, 0.93}};
    const std::vector<driver::SweepCell> cells = grid.cells();

    using CellCounts =
        std::map<std::string, std::map<std::string, std::uint64_t>>;
    auto run = [&](std::size_t threads) {
        reset_obs(true);
        obs::set_ring_capacity(4096); // counts must survive rotation
        driver::SweepOptions opts;
        opts.num_threads = threads;
        (void)driver::run_sweep(cells, opts);
        obs::set_enabled(false);
        obs::set_ring_capacity(0);
        const obs::Registry& reg = obs::Registry::instance();
        CellCounts out;
        for (const std::string& scope : reg.scope_names())
            for (const std::string& name :
                 reg.scoped_counter_names(scope))
                if (name.rfind("decision.", 0) == 0 &&
                    !thread_dependent(name))
                    out[scope][name] =
                        reg.find_scoped_counter(scope, name)->value();
        return out;
    };

    const CellCounts serial = run(1);
    const CellCounts parallel = run(8);

    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (const auto& [scope, counts] : serial) {
        const auto it = parallel.find(scope);
        ASSERT_NE(it, parallel.end()) << scope;
        EXPECT_EQ(counts, it->second) << scope;
    }

    // The noisy overridden-link grid must actually exercise the
    // decision-heavy paths this test pins (not vacuous equality).
    std::uint64_t purify = 0, scheme = 0, route = 0, burst = 0;
    for (const auto& [scope, counts] : serial)
        for (const auto& [name, value] : counts) {
            if (name.rfind("decision.schedule.purify.", 0) == 0)
                purify += value;
            if (name.rfind("decision.schedule.scheme.", 0) == 0)
                scheme += value;
            if (name.rfind("decision.route.path.", 0) == 0)
                route += value;
            if (name.rfind("decision.aggregate.burst.", 0) == 0)
                burst += value;
        }
    EXPECT_GT(purify, 0u);
    EXPECT_GT(scheme, 0u);
    EXPECT_GT(route, 0u);
    EXPECT_GT(burst, 0u);
}

} // namespace
