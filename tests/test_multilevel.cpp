/**
 * @file
 * Tests for the multilevel topology-aware partitioner (src/multilevel)
 * and its integration as partition::Mapper:
 *
 *  - golden neutrality: the default (OEE) sweep CSV is byte-identical
 *    to the CSV captured before the partitioner subsystem landed;
 *  - randomized properties: capacities respected under arbitrary
 *    shapes, refinement never worsens the weighted cut, hop-weighted
 *    refinement never worsens the flat partition's hop cost on
 *    ring/grid/star;
 *  - determinism across thread counts (parallel boundary refinement);
 *  - the acceptance bounds: multilevel >= 3x faster than OEE on a
 *    300-qubit paper-suite circuit at 10 nodes with a flat cut within
 *    10%, and strictly better hop-weighted cut than OEE on a ring.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <vector>

#include "circuits/library.hpp"
#include "driver/sweep.hpp"
#include "hw/machine.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/cost.hpp"
#include "multilevel/initial.hpp"
#include "multilevel/partitioner.hpp"
#include "multilevel/refine.hpp"
#include "partition/interaction_graph.hpp"
#include "partition/mapper.hpp"
#include "partition/mappers.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace autocomm;
using partition::InteractionGraph;
using partition::Mapper;

/** A random connected-ish weighted graph for property tests. */
InteractionGraph
random_graph(int num_qubits, int num_edges, support::Rng& rng)
{
    InteractionGraph g(num_qubits);
    for (int e = 0; e < num_edges; ++e) {
        const auto a = static_cast<QubitId>(
            rng.next_below(static_cast<std::uint64_t>(num_qubits)));
        auto b = static_cast<QubitId>(
            rng.next_below(static_cast<std::uint64_t>(num_qubits)));
        if (a == b)
            b = (b + 1) % num_qubits;
        g.add_edge(a, b, static_cast<long>(rng.next_range(1, 5)));
    }
    return g;
}

/** A seeded random shape: 2..6 nodes, total capacity >= num_qubits. */
std::vector<int>
random_shape(int num_qubits, support::Rng& rng)
{
    const int k = static_cast<int>(rng.next_range(2, 6));
    std::vector<int> caps(static_cast<std::size_t>(k));
    // Base fill that always holds the register, plus random slack.
    const int per = (num_qubits + k - 1) / k;
    for (int& c : caps)
        c = per + static_cast<int>(rng.next_range(0, 4));
    return caps;
}

std::vector<long>
loads_of(const std::vector<NodeId>& part, int k)
{
    std::vector<long> load(static_cast<std::size_t>(k), 0);
    for (NodeId p : part)
        load[static_cast<std::size_t>(p)]++;
    return load;
}

// ------------------------------------------------------------ golden CSV

/**
 * The sweep CSV of the {QFT,BV} x {16,24} x {2,4} x {all_to_all,ring}
 * grid, captured from the tree immediately BEFORE the partitioner
 * subsystem landed (PR-4 state, seed 2022, default options). The
 * default partitioner must reproduce it byte-for-byte: OEE rows are
 * pinned to be unaffected by the multilevel subsystem.
 */
const char kPrePartitionerCsv[] =
    "name,options,qubits,nodes,topology,shape,link_fidelity,"
    "target_fidelity,link_bandwidth,fidelity_overrides,"
    "bandwidth_overrides,ok,error,gates,cx,rem_cx,blocks,tot_comm,"
    "tp_comm,cat_comm,peak_rem_cx,makespan,epr_pairs,hops_total,epr_raw,"
    "purify_rounds,program_fidelity,improv_factor,lat_dec_factor\n"
    "QFT-16-2,default,16,2,all_to_all,,1.000000,0.000000,0,,,1,,616,240,"
    "128,8,16,16,0,8.000000,364.500000,16,16,16,0,1.000000,0.000000,"
    "0.000000\n"
    "QFT-16-2,default,16,2,ring,,1.000000,0.000000,0,,,1,,616,240,128,8,"
    "16,16,0,8.000000,364.500000,16,16,16,0,1.000000,0.000000,0.000000\n"
    "QFT-16-4,default,16,4,all_to_all,,1.000000,0.000000,0,,,1,,616,240,"
    "192,24,48,48,0,4.000000,585.100000,48,48,48,0,1.000000,0.000000,"
    "0.000000\n"
    "QFT-16-4,default,16,4,ring,,1.000000,0.000000,0,,,1,,616,240,192,24,"
    "48,48,0,4.000000,868.100000,48,64,64,0,1.000000,0.000000,0.000000\n"
    "QFT-24-2,default,24,2,all_to_all,,1.000000,0.000000,0,,,1,,1404,552,"
    "288,12,24,24,0,12.000000,664.100000,24,24,24,0,1.000000,0.000000,"
    "0.000000\n"
    "QFT-24-2,default,24,2,ring,,1.000000,0.000000,0,,,1,,1404,552,288,"
    "12,24,24,0,12.000000,664.100000,24,24,24,0,1.000000,0.000000,"
    "0.000000\n"
    "QFT-24-4,default,24,4,all_to_all,,1.000000,0.000000,0,,,1,,1404,552,"
    "432,36,72,72,0,6.000000,987.000000,72,72,72,0,1.000000,0.000000,"
    "0.000000\n"
    "QFT-24-4,default,24,4,ring,,1.000000,0.000000,0,,,1,,1404,552,432,"
    "36,72,72,0,6.000000,1355.000000,72,96,96,0,1.000000,0.000000,"
    "0.000000\n"
    "BV-16-2,default,16,2,all_to_all,,1.000000,0.000000,0,,,1,,46,13,6,1,"
    "1,0,1,6.000000,37.400000,1,1,1,0,1.000000,0.000000,0.000000\n"
    "BV-16-2,default,16,2,ring,,1.000000,0.000000,0,,,1,,46,13,6,1,1,0,1,"
    "6.000000,37.400000,1,1,1,0,1.000000,0.000000,0.000000\n"
    "BV-16-4,default,16,4,all_to_all,,1.000000,0.000000,0,,,1,,46,13,10,"
    "3,3,0,3,4.000000,64.000000,3,3,3,0,1.000000,0.000000,0.000000\n"
    "BV-16-4,default,16,4,ring,,1.000000,0.000000,0,,,1,,46,13,10,3,3,0,"
    "3,4.000000,94.100000,3,4,4,0,1.000000,0.000000,0.000000\n"
    "BV-24-2,default,24,2,all_to_all,,1.000000,0.000000,0,,,1,,68,19,8,1,"
    "1,0,1,8.000000,33.400000,1,1,1,0,1.000000,0.000000,0.000000\n"
    "BV-24-2,default,24,2,ring,,1.000000,0.000000,0,,,1,,68,19,8,1,1,0,1,"
    "8.000000,33.400000,1,1,1,0,1.000000,0.000000,0.000000\n"
    "BV-24-4,default,24,4,all_to_all,,1.000000,0.000000,0,,,1,,68,19,14,"
    "3,3,0,3,6.000000,71.000000,3,3,3,0,1.000000,0.000000,0.000000\n"
    "BV-24-4,default,24,4,ring,,1.000000,0.000000,0,,,1,,68,19,14,3,3,0,"
    "3,6.000000,101.100000,3,4,4,0,1.000000,0.000000,0.000000\n";

TEST(MultilevelGolden, DefaultPartitionerCsvIsByteIdenticalToPrePr)
{
    driver::SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {16, 24};
    grid.node_counts = {2, 4};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Ring};
    ASSERT_EQ(grid.partitioners,
              std::vector<Mapper>{Mapper::Oee}); // the default

    const std::string csv =
        driver::sweep_csv(driver::run_sweep(grid.cells(), {})).to_string();
    EXPECT_EQ(csv, kPrePartitionerCsv);
}

// -------------------------------------------------------------- mappers

TEST(MultilevelMapper, NamesRoundTripAndParseIsCaseInsensitive)
{
    for (Mapper m : partition::all_mappers()) {
        const auto parsed = partition::parse_mapper(mapper_name(m));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, m);
    }
    EXPECT_EQ(partition::parse_mapper("MultiLevel"), Mapper::Multilevel);
    EXPECT_EQ(partition::parse_mapper("MULTILEVEL+OEE"),
              Mapper::MultilevelOee);
    EXPECT_FALSE(partition::parse_mapper("metis").has_value());
    EXPECT_THROW(driver::parse_mapper_list("oee,metis", "--partitioner"),
                 support::UserError);
}

TEST(MultilevelMapper, OeeDispatchMatchesDirectOee)
{
    const qir::Circuit c = qir::decompose(circuits::make_benchmark(
        {circuits::Family::QFT, 24, 4}, 2022));
    const InteractionGraph g = InteractionGraph::from_circuit(c);
    const hw::Machine m = hw::Machine::homogeneous(4, 6);
    EXPECT_EQ(partition::partition_with(Mapper::Oee, g, m),
              partition::oee_partition(g, m.capacities()));
}

// ------------------------------------------------------------- coarsen

TEST(MultilevelCoarsen, PreservesWeightAndHonorsTheVertexCap)
{
    support::Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = static_cast<int>(rng.next_range(20, 120));
        const InteractionGraph g = random_graph(n, 3 * n, rng);
        multilevel::CoarsenOptions opts;
        opts.target_vertices = 8;
        opts.max_vertex_weight = static_cast<int>(rng.next_range(2, 9));

        const std::vector<multilevel::CoarseLevel> levels =
            multilevel::coarsen(g, opts);
        int fine_n = n;
        for (const multilevel::CoarseLevel& level : levels) {
            // Every fine vertex maps somewhere, weights add up, and no
            // coarse vertex merged past the cap.
            ASSERT_EQ(static_cast<int>(level.fine_to_coarse.size()),
                      fine_n);
            long total = 0;
            for (int w : level.vertex_weight) {
                EXPECT_GE(w, 1);
                EXPECT_LE(w, opts.max_vertex_weight);
                total += w;
            }
            EXPECT_EQ(total, n);
            EXPECT_LT(level.graph.num_qubits(), fine_n); // strict shrink
            fine_n = level.graph.num_qubits();
        }
    }
}

TEST(MultilevelCoarsen, CoarseCutEqualsFineCutOfProjectedPartition)
{
    support::Rng rng(23);
    const InteractionGraph g = random_graph(60, 200, rng);
    multilevel::CoarsenOptions opts;
    opts.target_vertices = 10;
    opts.max_vertex_weight = 6;
    const std::vector<multilevel::CoarseLevel> levels =
        multilevel::coarsen(g, opts);
    ASSERT_FALSE(levels.empty());

    // Any partition of the coarsest graph, projected down, must cut
    // exactly the weight the coarse graph says it cuts (contraction
    // preserves crossing weight).
    const InteractionGraph& coarsest = levels.back().graph;
    std::vector<NodeId> coarse_part(
        static_cast<std::size_t>(coarsest.num_qubits()));
    for (std::size_t v = 0; v < coarse_part.size(); ++v)
        coarse_part[v] = static_cast<NodeId>(v % 3);

    std::vector<NodeId> fine_part = coarse_part;
    for (std::size_t li = levels.size(); li-- > 0;) {
        const std::vector<QubitId>& map = levels[li].fine_to_coarse;
        std::vector<NodeId> finer(map.size());
        for (std::size_t v = 0; v < map.size(); ++v)
            finer[v] = fine_part[static_cast<std::size_t>(map[v])];
        fine_part = std::move(finer);
    }
    EXPECT_EQ(coarsest.cut_weight(coarse_part), g.cut_weight(fine_part));
}

// ----------------------------------------------------------- properties

TEST(MultilevelProperty, CapacitiesRespectedAcrossRandomShapes)
{
    support::Rng rng(31);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = static_cast<int>(rng.next_range(8, 80));
        const InteractionGraph g = random_graph(n, 2 * n, rng);
        const std::vector<int> caps = random_shape(n, rng);
        hw::Machine m = hw::Machine::from_capacities(
            caps, trial % 2 == 0 ? hw::Topology::Ring
                                 : hw::Topology::Grid);

        for (Mapper mapper : {Mapper::Multilevel, Mapper::MultilevelOee}) {
            const std::vector<NodeId> part =
                partition::partition_with(mapper, g, m);
            ASSERT_EQ(part.size(), static_cast<std::size_t>(n));
            const std::vector<long> load =
                loads_of(part, static_cast<int>(caps.size()));
            for (std::size_t p = 0; p < caps.size(); ++p)
                EXPECT_LE(load[p], caps[p])
                    << "node " << p << " over capacity (trial " << trial
                    << ", " << partition::mapper_name(mapper) << ")";
        }
    }
}

TEST(MultilevelProperty, RefineNeverWorsensTheWeightedCut)
{
    support::Rng rng(37);
    support::ThreadPool pool(4);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = static_cast<int>(rng.next_range(10, 60));
        const InteractionGraph g = random_graph(n, 3 * n, rng);
        const std::vector<int> caps = random_shape(n, rng);
        const int k = static_cast<int>(caps.size());
        hw::Machine m = hw::Machine::from_capacities(
            caps, hw::Topology::Ring);
        const multilevel::CostModel cost =
            multilevel::CostModel::from_machine(m);

        // A random feasible partition: capacity-fill then shuffle by
        // random feasible single moves.
        std::vector<NodeId> part =
            partition::capacity_fill(n, caps);
        std::vector<long> load = loads_of(part, k);
        for (int s = 0; s < 2 * n; ++s) {
            const auto v = static_cast<QubitId>(
                rng.next_below(static_cast<std::uint64_t>(n)));
            const auto q = static_cast<NodeId>(
                rng.next_below(static_cast<std::uint64_t>(k)));
            if (load[static_cast<std::size_t>(q)] + 1 <=
                caps[static_cast<std::size_t>(q)]) {
                load[static_cast<std::size_t>(
                    part[static_cast<std::size_t>(v)])]--;
                part[static_cast<std::size_t>(v)] = q;
                load[static_cast<std::size_t>(q)]++;
            }
        }

        const std::vector<int> unit(static_cast<std::size_t>(n), 1);
        const double before = multilevel::weighted_cut(g, part, cost);

        std::vector<NodeId> serial = part;
        multilevel::refine(g, unit, caps, cost, serial, {});
        const double after = multilevel::weighted_cut(g, serial, cost);
        EXPECT_LE(after, before + 1e-9);

        // Parallel gain evaluation must not change the result.
        std::vector<NodeId> parallel = part;
        multilevel::RefineOptions ropts;
        ropts.pool = &pool;
        multilevel::refine(g, unit, caps, cost, parallel, ropts);
        EXPECT_EQ(parallel, serial);

        // Loads must be unchanged-feasible after refinement.
        const std::vector<long> after_load = loads_of(serial, k);
        for (int p = 0; p < k; ++p)
            EXPECT_LE(after_load[static_cast<std::size_t>(p)],
                      caps[static_cast<std::size_t>(p)]);
    }
}

TEST(MultilevelProperty, HopAwareRefineNeverWorsensFlatPartitionHopCut)
{
    support::Rng rng(41);
    for (const hw::Topology topo :
         {hw::Topology::Ring, hw::Topology::Grid, hw::Topology::Star}) {
        for (int trial = 0; trial < 8; ++trial) {
            const int n = static_cast<int>(rng.next_range(20, 80));
            const InteractionGraph g = random_graph(n, 3 * n, rng);
            const int k = static_cast<int>(rng.next_range(3, 8));
            hw::Machine m =
                hw::Machine::homogeneous(k, (n + k - 1) / k, topo);
            const multilevel::CostModel hops =
                multilevel::CostModel::hops(m);

            // The topology-blind partition, then hop-aware refinement
            // on top: the hop-weighted cut can only improve.
            multilevel::MultilevelOptions mlopts;
            mlopts.topology_aware = false;
            std::vector<NodeId> flat = multilevel::multilevel_partition(
                g, m.capacities(), multilevel::CostModel::flat(k),
                mlopts);
            const double flat_hop_cut =
                multilevel::weighted_cut(g, flat, hops);

            std::vector<NodeId> aware = flat;
            const std::vector<int> unit(static_cast<std::size_t>(n), 1);
            multilevel::refine(g, unit, m.capacities(), hops, aware, {});
            EXPECT_LE(multilevel::weighted_cut(g, aware, hops),
                      flat_hop_cut + 1e-9)
                << hw::topology_name(topo) << " trial " << trial;
        }
    }
}

TEST(MultilevelProperty, PolishNeverWorsensTheFlatCut)
{
    support::Rng rng(43);
    for (int trial = 0; trial < 10; ++trial) {
        const int n = static_cast<int>(rng.next_range(16, 60));
        const InteractionGraph g = random_graph(n, 3 * n, rng);
        const std::vector<int> caps = random_shape(n, rng);
        hw::Machine m = hw::Machine::from_capacities(caps);

        const std::vector<NodeId> ml =
            partition::partition_with(Mapper::Multilevel, g, m);
        const std::vector<NodeId> polished =
            partition::partition_with(Mapper::MultilevelOee, g, m);
        EXPECT_LE(g.cut_weight(polished), g.cut_weight(ml))
            << "trial " << trial;
    }
}

TEST(MultilevelProperty, InsufficientCapacityThrows)
{
    support::Rng rng(47);
    const InteractionGraph g = random_graph(20, 40, rng);
    hw::Machine m = hw::Machine::from_capacities({4, 4, 4});
    EXPECT_THROW(partition::partition_with(Mapper::Multilevel, g, m),
                 support::UserError);
    EXPECT_THROW(
        multilevel::initial_partition(
            g, std::vector<int>(20, 1), {4, 4, 4},
            multilevel::CostModel::flat(3)),
        support::UserError);
}

TEST(MultilevelProperty, DeterministicAcrossThreadCountsAndRuns)
{
    const qir::Circuit c = qir::decompose(circuits::make_benchmark(
        {circuits::Family::QAOA, 100, 10}, 2022));
    const InteractionGraph g = InteractionGraph::from_circuit(c);
    hw::Machine m = hw::Machine::homogeneous(10, 10, hw::Topology::Grid);

    const std::vector<NodeId> serial =
        multilevel::multilevel_partition(g, m);
    for (const std::size_t threads : {2u, 8u}) {
        support::ThreadPool pool(threads);
        multilevel::MultilevelOptions opts;
        opts.pool = &pool;
        EXPECT_EQ(multilevel::multilevel_partition(g, m, opts), serial)
            << threads << " threads";
    }
    EXPECT_EQ(multilevel::multilevel_partition(g, m), serial);
}

// ------------------------------------------------------ sweep integration

TEST(MultilevelSweep, MemoizedSweepMatchesPerCellRuns)
{
    // Multilevel mappings depend on the topology and noise axes, so the
    // memoized sweep must NOT share them the way OEE mappings are
    // shared; per-cell run_cell is the ground truth.
    driver::SweepGrid grid;
    grid.families = {circuits::Family::QFT};
    grid.qubit_counts = {16};
    grid.node_counts = {4};
    grid.topologies = {hw::Topology::Ring, hw::Topology::Star};
    grid.link_fidelities = {1.0, 0.9};
    grid.target_fidelities = {0.95};
    grid.partitioners = {Mapper::Oee, Mapper::Multilevel,
                         Mapper::MultilevelOee};
    const std::vector<driver::SweepCell> cells = grid.cells();

    driver::SweepOptions opts;
    opts.num_threads = 4;
    const std::vector<driver::SweepRow> swept =
        driver::run_sweep(cells, opts);

    std::vector<driver::SweepRow> direct;
    for (const driver::SweepCell& cell : cells)
        direct.push_back(driver::run_cell(cell));
    EXPECT_EQ(driver::sweep_csv(swept).to_string(),
              driver::sweep_csv(direct).to_string());
}

TEST(MultilevelSweep, PartitionerAxisExpandsBetweenNoiseAndOptions)
{
    driver::SweepGrid grid;
    grid.families = {circuits::Family::BV};
    grid.qubit_counts = {12};
    grid.node_counts = {2};
    grid.partitioners = {Mapper::Oee, Mapper::Multilevel};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    const std::vector<driver::SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].label(), "BV-12-2/default");
    EXPECT_EQ(cells[1].label(), "BV-12-2/sparse");
    EXPECT_EQ(cells[2].label(), "BV-12-2/default!multilevel");
    EXPECT_EQ(cells[3].label(), "BV-12-2/sparse!multilevel");
}

// ----------------------------------------------------------- acceptance

TEST(MultilevelAcceptance, FasterThanOeeWithComparableFlatCutAt300Qubits)
{
    // The ISSUE-5 acceptance bound: on a 300-qubit paper-suite circuit
    // at 10 nodes, multilevel must run >= 3x faster than OEE with a
    // flat cut within 10%. QAOA-300 is the hardest partitioning
    // instance in the suite (dense irregular interaction graph).
    using clock_type = std::chrono::steady_clock;
    const qir::Circuit c = qir::decompose(circuits::make_benchmark(
        {circuits::Family::QAOA, 300, 10}, 2022));
    const InteractionGraph g = InteractionGraph::from_circuit(c);
    hw::Machine m = hw::Machine::homogeneous(10, 30);

    auto t0 = clock_type::now();
    const std::vector<NodeId> oee =
        partition::oee_partition(g, m.capacities());
    const double oee_s =
        std::chrono::duration<double>(clock_type::now() - t0).count();

    t0 = clock_type::now();
    const std::vector<NodeId> ml =
        multilevel::multilevel_partition(g, m);
    const double ml_s =
        std::chrono::duration<double>(clock_type::now() - t0).count();

    EXPECT_GE(oee_s / ml_s, 3.0)
        << "multilevel took " << ml_s << "s vs OEE " << oee_s << "s";
    EXPECT_LE(static_cast<double>(g.cut_weight(ml)),
              1.10 * static_cast<double>(g.cut_weight(oee)))
        << "multilevel flat cut " << g.cut_weight(ml) << " vs OEE "
        << g.cut_weight(oee);
}

TEST(MultilevelAcceptance, HopWeightedCutBeatsOeeOnARing)
{
    // Topology awareness must pay off somewhere concrete: on the ring
    // machine the hop-weighted cut of the multilevel partition is
    // strictly better than capacity-aware OEE's (which optimizes the
    // flat cut and ignores hop distances entirely).
    const qir::Circuit c = qir::decompose(circuits::make_benchmark(
        {circuits::Family::QAOA, 300, 10}, 2022));
    const InteractionGraph g = InteractionGraph::from_circuit(c);
    hw::Machine m = hw::Machine::homogeneous(10, 30, hw::Topology::Ring);
    const multilevel::CostModel hops = multilevel::CostModel::hops(m);

    const std::vector<NodeId> oee =
        partition::oee_partition(g, m.capacities());
    const std::vector<NodeId> ml =
        multilevel::multilevel_partition(g, m);
    EXPECT_LT(multilevel::weighted_cut(g, ml, hops),
              multilevel::weighted_cut(g, oee, hops));
}

} // namespace
