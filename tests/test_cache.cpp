/**
 * @file
 * Tests for the persistent sweep-result cache (src/cache): stable
 * hashing, cell-key sensitivity to every field, JSON round trips, store
 * persistence/staleness, warm-run byte-identity with cold runs, and
 * shard-then-merge reproducing the unsharded sweep exactly.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cache/hash.hpp"
#include "cache/json.hpp"
#include "cache/key.hpp"
#include "cache/serialize.hpp"
#include "cache/store.hpp"
#include "circuits/qasm_source.hpp"
#include "driver/sweep.hpp"
#include "support/log.hpp"

namespace {

namespace fs = std::filesystem;
using namespace autocomm;
using cache::CellKey;
using cache::Json;
using cache::ResultStore;
using driver::SweepCell;
using driver::SweepGrid;
using driver::SweepOptions;
using driver::SweepRow;

/** A unique empty temp directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string& tag)
    {
        path = fs::temp_directory_path() /
               ("autocomm-test-" + tag + "-" +
                std::to_string(::getpid()));
        fs::remove_all(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

// ------------------------------------------------------------- hashing

TEST(CacheHash, IsStableAndSensitive)
{
    const cache::Hash128 a = cache::hash128("hello");
    EXPECT_EQ(a, cache::hash128("hello"));
    EXPECT_NE(a, cache::hash128("hellp"));
    EXPECT_NE(a, cache::hash128("hell"));
    EXPECT_NE(cache::hash128(""), cache::hash128(std::string(1, '\0')));
    EXPECT_EQ(a.hex().size(), 32u);
    EXPECT_EQ(cache::hash128("").hex().size(), 32u);
}

TEST(CacheHash, PermutedInputsDiffer)
{
    // The two lanes must not collapse on reordered bytes.
    EXPECT_NE(cache::hash128("ab"), cache::hash128("ba"));
    EXPECT_NE(cache::hash128("abc"), cache::hash128("cba"));
}

// ------------------------------------------------------------ cell keys

TEST(CacheKey, EveryCellFieldChangesTheKey)
{
    SweepCell base;
    base.spec = {circuits::Family::QFT, 16, 4};

    const std::string h0 = cache::cell_key(base).hex();
    EXPECT_EQ(h0, cache::cell_key(base).hex()); // deterministic

    std::vector<SweepCell> mutants;
    auto mutate = [&](auto&& f) {
        SweepCell c = base;
        f(c);
        mutants.push_back(c);
    };
    mutate([](SweepCell& c) { c.spec.family = circuits::Family::BV; });
    mutate([](SweepCell& c) { c.spec.num_qubits = 17; });
    mutate([](SweepCell& c) { c.spec.num_nodes = 2; });
    mutate([](SweepCell& c) { c.seed = 2023; });
    mutate([](SweepCell& c) { c.shape = "4x4"; });
    mutate([](SweepCell& c) { c.topology = hw::Topology::Ring; });
    mutate([](SweepCell& c) { c.link_fidelity = 0.95; });
    mutate([](SweepCell& c) { c.target_fidelity = 0.99; });
    mutate([](SweepCell& c) { c.link_bandwidth = 2; });
    mutate([](SweepCell& c) {
        c.link_fidelity_overrides = {{0, 1, 0.9}};
    });
    mutate([](SweepCell& c) {
        c.link_bandwidth_overrides = {{0, 1, 2.0}};
    });
    mutate([](SweepCell& c) { c.options.name = "renamed"; });
    mutate([](SweepCell& c) {
        c.options.opts.aggregate.use_commutation = false;
    });
    mutate([](SweepCell& c) { c.options.opts.assign.allow_tp = false; });
    mutate([](SweepCell& c) {
        c.options.opts.schedule.epr_prefetch = false;
    });
    mutate([](SweepCell& c) {
        c.partitioner = partition::Mapper::Multilevel;
    });
    mutate([](SweepCell& c) {
        c.partitioner = partition::Mapper::MultilevelOee;
    });
    mutate([](SweepCell& c) { c.with_baseline = true; });
    mutate([](SweepCell& c) { c.with_gptp = true; });
    mutate([](SweepCell& c) { c.stats_only = true; });

    std::set<std::string> seen{h0};
    for (const SweepCell& m : mutants) {
        const std::string h = cache::cell_key(m).hex();
        EXPECT_TRUE(seen.insert(h).second)
            << "key not sensitive to a mutation near "
            << cache::cell_key(m).canonical;
    }
}

TEST(CacheKey, SaltChangesTheKey)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    EXPECT_NE(cache::cell_key(cell, "s1").hex(),
              cache::cell_key(cell, "s2").hex());
}

TEST(CacheKey, NearbyFidelityDoublesKeyDifferently)
{
    SweepCell a;
    a.spec = {circuits::Family::QFT, 16, 4};
    a.link_fidelity = 0.92;
    SweepCell b = a;
    b.link_fidelity = std::nextafter(0.92, 1.0); // 1 ulp; %g would merge
    EXPECT_NE(cache::cell_key(a).hex(), cache::cell_key(b).hex());
}

// ----------------------------------------------------------------- json

TEST(CacheJson, DumpParseIsAFixedPoint)
{
    Json doc = Json::object();
    doc.set("s", Json::string("line\nwith \"quotes\" and \\ and \x01"));
    doc.set("d", Json::number(0.1));
    doc.set("big", Json::number(18446744073709551615ULL));
    doc.set("neg", Json::number(-123456789LL));
    doc.set("t", Json::boolean(true));
    doc.set("n", Json::null());
    Json arr = Json::array();
    arr.push_back(Json::number(1.5e-300));
    arr.push_back(Json::string(""));
    doc.set("a", std::move(arr));

    const std::string once = doc.dump();
    const auto parsed = Json::parse(once);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dump(), once);
    // Exact scalar recovery.
    EXPECT_EQ(parsed->at("big").to_uint(), 18446744073709551615ULL);
    EXPECT_DOUBLE_EQ(parsed->at("d").to_double(), 0.1);
    EXPECT_EQ(parsed->at("s").to_string(),
              "line\nwith \"quotes\" and \\ and \x01");
}

TEST(CacheJson, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(Json::parse("{", &err).has_value());
    EXPECT_FALSE(Json::parse("{}garbage", &err).has_value());
    EXPECT_FALSE(Json::parse("[1,,2]", &err).has_value());
    EXPECT_FALSE(Json::parse("\"\\u12\"", &err).has_value());
    EXPECT_FALSE(Json::parse("nul", &err).has_value());
    EXPECT_FALSE(Json::parse("", &err).has_value());
    EXPECT_TRUE(Json::parse("  42 ").has_value());
}

// ------------------------------------------------------- row round trip

TEST(CacheSerialize, NoisyBaselineRowRoundTripsByteIdentically)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    cell.topology = hw::Topology::Ring;
    cell.link_fidelity = 0.95;
    cell.target_fidelity = 0.99;
    cell.link_bandwidth = 2;
    cell.with_baseline = true;
    const SweepRow row = driver::run_cell(cell);
    ASSERT_TRUE(row.ok) << row.error;

    const std::string dumped = cache::row_to_json(row).dump();
    const auto parsed = Json::parse(dumped);
    ASSERT_TRUE(parsed.has_value());
    const SweepRow back = cache::row_from_json(*parsed, cell);

    EXPECT_EQ(driver::sweep_csv({row}).to_string(),
              driver::sweep_csv({back}).to_string());
    // Beyond the CSV: the Fig. 15 distribution and the ledger survive.
    EXPECT_EQ(back.metrics.per_comm_cx, row.metrics.per_comm_cx);
    EXPECT_EQ(back.metrics.block_sizes, row.metrics.block_sizes);
    EXPECT_EQ(back.schedule.ledger.raw_total(),
              row.schedule.ledger.raw_total());
    EXPECT_EQ(back.schedule.ledger.busiest(),
              row.schedule.ledger.busiest());
    EXPECT_DOUBLE_EQ(back.schedule.program_fidelity(),
                     row.schedule.program_fidelity());
    ASSERT_TRUE(back.factors.has_value());
    EXPECT_DOUBLE_EQ(back.factors->improv_factor,
                     row.factors->improv_factor);
}

TEST(CacheSerialize, ErrorRowRoundTrips)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, 16, 2};
    bad.shape = "2x4"; // insufficient capacity
    const std::vector<SweepRow> rows = driver::run_sweep({bad}, {});
    ASSERT_FALSE(rows[0].ok);

    const auto parsed = Json::parse(cache::row_to_json(rows[0]).dump());
    ASSERT_TRUE(parsed.has_value());
    const SweepRow back = cache::row_from_json(*parsed, bad);
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, rows[0].error);
}

// ---------------------------------------------------------------- store

SweepGrid
small_grid()
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {10, 12};
    grid.node_counts = {2};
    grid.link_fidelities = {1.0, 0.95};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    return grid;
}

TEST(CacheStore, WarmRunHitsEverythingAndMatchesColdRunByteIdentically)
{
    TempDir dir("warm");
    const std::vector<SweepCell> cells = small_grid().cells();

    std::string cold_csv;
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.num_threads = 4;
        opts.store = &store;
        cold_csv = driver::sweep_csv(driver::run_sweep(cells, opts))
                       .to_string();
        EXPECT_EQ(store.stats().hits, 0u);
        EXPECT_EQ(store.stats().misses, cells.size());
        EXPECT_EQ(store.stats().inserted, cells.size());
        store.flush();
    }
    {
        // Warm, different thread count: every cell must hit and the CSV
        // must be byte-identical to the cold run.
        ResultStore store(dir.str());
        EXPECT_EQ(store.stats().loaded, cells.size());
        SweepOptions opts;
        opts.num_threads = 1;
        opts.store = &store;
        const std::string warm_csv =
            driver::sweep_csv(driver::run_sweep(cells, opts)).to_string();
        EXPECT_EQ(store.stats().hits, cells.size());
        EXPECT_EQ(store.stats().misses, 0u);
        EXPECT_EQ(warm_csv, cold_csv);
    }
}

TEST(CacheStore, PartiallyWarmSweepIsThreadCountInvariant)
{
    // Seed the store with only half of the grid, then run the full grid
    // at several thread counts. Warm cells skip the stage pipeline
    // entirely while cold cells flow through it concurrently; the CSV
    // must be byte-identical to a fully cold serial run regardless.
    const std::vector<SweepCell> cells = small_grid().cells();
    ASSERT_GE(cells.size(), 4u);
    const std::vector<SweepCell> half(cells.begin(),
                                      cells.begin() +
                                          static_cast<long>(cells.size() / 2));

    SweepOptions cold;
    cold.num_threads = 1;
    const std::string cold_csv =
        driver::sweep_csv(driver::run_sweep(cells, cold)).to_string();

    for (const std::size_t threads : {1u, 2u, 8u}) {
        TempDir dir("halfwarm-" + std::to_string(threads));
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.num_threads = threads;
        opts.store = &store;
        driver::run_sweep(half, opts);
        const std::string csv =
            driver::sweep_csv(driver::run_sweep(cells, opts)).to_string();
        EXPECT_EQ(store.stats().hits, half.size());
        EXPECT_EQ(csv, cold_csv) << threads << " threads";
    }
}

TEST(CacheStore, SaltBumpInvalidatesEveryEntry)
{
    TempDir dir("salt");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str(), "salt-A");
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.flush();
    }
    {
        // New salt: nothing loads, everything misses and recompiles.
        ResultStore store(dir.str(), "salt-B");
        EXPECT_EQ(store.stats().loaded, 0u);
        EXPECT_EQ(store.stats().stale, cells.size());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        EXPECT_EQ(store.stats().hits, 0u);
        EXPECT_EQ(store.stats().misses, cells.size());
        store.flush();
    }
    {
        // The original salt still sees its own entries.
        ResultStore store(dir.str(), "salt-A");
        EXPECT_EQ(store.stats().loaded, cells.size());
    }
}

TEST(CacheStore, ShardsPartitionTheGridAndMergeReproducesUnsharded)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string unsharded =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();

    const driver::ShardSpec s0{0, 2};
    const driver::ShardSpec s1{1, 2};
    const std::vector<SweepCell> part0 = cache::shard_filter(cells, s0);
    const std::vector<SweepCell> part1 = cache::shard_filter(cells, s1);
    EXPECT_EQ(part0.size() + part1.size(), cells.size());
    EXPECT_FALSE(part0.empty());
    EXPECT_FALSE(part1.empty());

    TempDir dir0("shard0");
    TempDir dir1("shard1");
    for (const auto& [part, dir] :
         {std::make_pair(&part0, &dir0), std::make_pair(&part1, &dir1)}) {
        ResultStore store(dir->str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(*part, opts);
        store.flush();
    }

    // Merge shard 1 into shard 0's store and assemble the full grid.
    ResultStore merged(dir0.str());
    EXPECT_EQ(merged.merge_from(dir1.str()), part1.size());
    merged.compact();
    const std::vector<SweepRow> rows = cache::assemble(cells, merged);
    EXPECT_EQ(driver::sweep_csv(rows).to_string(), unsharded);

    // Compaction leaves exactly one canonical segment; reopening it
    // still serves the full grid.
    std::size_t segments = 0;
    for (const auto& e : fs::directory_iterator(dir0.path))
        segments += e.path().extension() == ".jsonl" ? 1 : 0;
    EXPECT_EQ(segments, 1u);
    ResultStore reopened(dir0.str());
    EXPECT_EQ(reopened.stats().loaded, cells.size());
}

TEST(CacheStore, AssembleThrowsOnMissingCells)
{
    TempDir dir("missing");
    ResultStore store(dir.str());
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 10, 2};
    EXPECT_THROW(cache::assemble({cell}, store), support::UserError);
}

TEST(CacheStore, CorruptLinesAreDroppedNotFatal)
{
    TempDir dir("corrupt");
    {
        ResultStore store(dir.str());
        SweepCell cell;
        cell.spec = {circuits::Family::QFT, 10, 2};
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep({cell}, opts);
        store.flush();
    }
    {
        std::ofstream out(dir.path / "seg-garbage.jsonl",
                          std::ios::app);
        out << "{not json at all\n";
        out << "{\"key\":\"zz\",\"salt\":\"mismatch\"}\n";
    }
    ResultStore store(dir.str());
    EXPECT_EQ(store.stats().loaded, 1u);
    EXPECT_EQ(store.stats().stale, 2u);
}

TEST(CacheStore, CorruptEntrySelfHealConvergesOnDisk)
{
    TempDir dir("heal");
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 10, 2};
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep({cell}, opts);
        store.flush();
    }
    // Corrupt the stored row in place, keeping the line valid JSON so
    // the damage is only detected at lookup (row_from_json) time.
    for (const auto& seg : fs::directory_iterator(dir.path)) {
        std::ifstream in(seg.path());
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        const std::size_t at = text.find("\"ok\":true");
        ASSERT_NE(at, std::string::npos);
        text.replace(at, 9, "\"ok\":1234");
        std::ofstream(seg.path(), std::ios::trunc) << text;
    }
    {
        // The corrupt entry is dropped at lookup, recompiled, and the
        // flush retires the corrupt segment for good.
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        support::set_log_level(support::LogLevel::Quiet);
        driver::run_sweep({cell}, opts);
        support::set_log_level(support::LogLevel::Warn);
        EXPECT_EQ(store.stats().misses, 1u);
        store.flush();
    }
    {
        // Converged: one clean segment, a plain hit, no staleness.
        std::size_t segments = 0;
        for (const auto& e : fs::directory_iterator(dir.path))
            segments += e.path().extension() == ".jsonl" ? 1 : 0;
        EXPECT_EQ(segments, 1u);
        ResultStore store(dir.str());
        EXPECT_EQ(store.stats().loaded, 1u);
        const auto row = store.lookup(cache::cell_key(cell), cell);
        ASSERT_TRUE(row.has_value());
        EXPECT_TRUE(row->ok);
        EXPECT_EQ(store.stats().stale, 0u);
    }
}

TEST(CacheStore, HashCollisionIsServedAsAMiss)
{
    TempDir dir("collide");
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 10, 2};
    const CellKey key = cache::cell_key(cell);
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep({cell}, opts);
        store.flush();
    }
    // Forge an entry whose key hash matches but whose canonical string
    // does not (as a real 128-bit collision would look).
    CellKey forged = key;
    forged.canonical += ";forged=1";
    ResultStore store(dir.str());
    support::set_log_level(support::LogLevel::Quiet);
    const auto row = store.lookup(forged, cell);
    support::set_log_level(support::LogLevel::Warn);
    EXPECT_FALSE(row.has_value());
    EXPECT_EQ(store.stats().misses, 1u);
}

// ---------------------------------------------- shard spec / overrides

// ------------------------------------------------------------------- gc

/** All *.jsonl files in @p dir, sorted by name. */
std::vector<std::string>
segment_names(const std::string& dir)
{
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".jsonl")
            names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
}

TEST(CacheGc, FreshEntriesSurviveAndTheStoreCompacts)
{
    TempDir dir("gc-fresh");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.flush();
        // Just-compiled rows are far younger than a day: nothing drops,
        // and gc leaves the store compacted to the canonical segment.
        EXPECT_EQ(store.gc(1.0), 0u);
        EXPECT_EQ(store.size(), cells.size());
    }
    EXPECT_EQ(segment_names(dir.str()),
              std::vector<std::string>{"store.jsonl"});
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().loaded, cells.size());
}

TEST(CacheGc, PreTimestampEntriesCountAsExpired)
{
    TempDir dir("gc-legacy");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.flush();
        store.compact();
    }
    // Strip the "ts" fields, simulating a store written before
    // timestamps existed.
    const fs::path canonical = dir.path / "store.jsonl";
    std::string text;
    {
        std::ifstream in(canonical);
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    for (std::size_t at; (at = text.find("\"ts\":")) != std::string::npos;)
        text.erase(at, text.find(',', at) + 1 - at);
    {
        std::ofstream out(canonical, std::ios::trunc);
        out << text;
    }
    ResultStore store(dir.str());
    ASSERT_EQ(store.stats().loaded, cells.size()); // still readable
    // Even an allowance reaching past the epoch expires timestamp-less
    // entries: their age is unknown, so a GC pass retires them.
    EXPECT_EQ(store.gc(50000.0), cells.size());
    EXPECT_EQ(store.size(), 0u);
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().loaded, 0u);
}

TEST(CacheGc, WarmHitOutlivesUntouchedEntryOfTheSameAge)
{
    TempDir dir("gc-lasthit");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.compact();
    }
    // Backdate every entry's compile time by ten days; all of them are
    // now past a five-day allowance.
    const fs::path canonical = dir.path / "store.jsonl";
    std::string text;
    {
        std::ifstream in(canonical);
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    const long long old_ts =
        static_cast<long long>(std::time(nullptr)) - 10ll * 86400ll;
    for (std::size_t at = 0;
         (at = text.find("\"ts\":", at)) != std::string::npos;) {
        const std::size_t end = text.find(',', at);
        text.replace(at, end - at, "\"ts\":" + std::to_string(old_ts));
        at += 5;
    }
    {
        std::ofstream out(canonical, std::ios::trunc);
        out << text;
    }

    ResultStore store(dir.str());
    ASSERT_EQ(store.stats().loaded, cells.size());
    // Serve exactly one cell from the store: its last-hit time is now,
    // so a five-day pass keeps it while retiring every same-age sibling.
    const SweepCell& hot = cells.front();
    ASSERT_TRUE(store.lookup(cache::cell_key(hot), hot).has_value());
    EXPECT_EQ(store.gc(5.0), cells.size() - 1);
    EXPECT_EQ(store.size(), 1u);

    // The refreshed last-hit time reached disk with gc's compaction, so
    // a fresh open still serves the hot cell.
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().loaded, 1u);
    EXPECT_TRUE(reopened.lookup(cache::cell_key(hot), hot).has_value());
}

TEST(CacheGc, StaleSaltLinesLeaveTheDiskOnGc)
{
    TempDir dir("gc-stale");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str(), "salt-A");
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.flush();
    }
    {
        // Opened under a bumped salt every salt-A line is stale; gc
        // compacts the (empty) live view, so the old segments — and the
        // stale lines in them — are deleted, not just skipped.
        ResultStore store(dir.str(), "salt-B");
        EXPECT_EQ(store.stats().stale, cells.size());
        EXPECT_EQ(store.gc(10000.0), 0u); // nothing live to expire
    }
    ResultStore old_salt(dir.str(), "salt-A");
    EXPECT_EQ(old_salt.stats().loaded, 0u);
    EXPECT_EQ(old_salt.stats().stale, 0u);
}

TEST(CacheGc, NegativeAgeIsRejected)
{
    TempDir dir("gc-neg");
    ResultStore store(dir.str());
    EXPECT_THROW(store.gc(-1.0), support::UserError);
}

TEST(CacheGc, GcToBytesGenerousBudgetKeepsAllAndCompacts)
{
    TempDir dir("gc-bytes-keep");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.flush();
        // A budget far above the store's footprint evicts nothing, but
        // the pass still compacts down to the canonical segment.
        EXPECT_EQ(store.gc_to_bytes(std::size_t{1} << 30), 0u);
        EXPECT_EQ(store.size(), cells.size());
    }
    EXPECT_EQ(segment_names(dir.str()),
              std::vector<std::string>{"store.jsonl"});
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().loaded, cells.size());
}

TEST(CacheGc, GcToBytesZeroBudgetDropsEverything)
{
    TempDir dir("gc-bytes-zero");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.flush();
        EXPECT_EQ(store.gc_to_bytes(0), cells.size());
        EXPECT_EQ(store.size(), 0u);
    }
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().loaded, 0u);
}

TEST(CacheGc, GcToBytesEvictsColdestEntriesFirst)
{
    TempDir dir("gc-bytes-cold");
    const std::vector<SweepCell> cells = small_grid().cells();
    {
        ResultStore store(dir.str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(cells, opts);
        store.compact();
    }
    // Backdate every compile timestamp by ten days so all entries share
    // one old gc basis; a fresh lookup below separates the hot one.
    const fs::path canonical = dir.path / "store.jsonl";
    std::string text;
    {
        std::ifstream in(canonical);
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    const long long old_ts =
        static_cast<long long>(std::time(nullptr)) - 10ll * 86400ll;
    for (std::size_t at = 0;
         (at = text.find("\"ts\":", at)) != std::string::npos;) {
        const std::size_t end = text.find(',', at);
        text.replace(at, end - at, "\"ts\":" + std::to_string(old_ts));
        at += 5;
    }
    {
        std::ofstream out(canonical, std::ios::trunc);
        out << text;
    }

    ResultStore store(dir.str());
    ASSERT_EQ(store.stats().loaded, cells.size());
    // Touching one cell refreshes its last-hit time: under a budget that
    // forces a partial eviction, the untouched ten-day-old siblings go
    // first and the hot entry is the last candidate standing.
    const SweepCell& hot = cells.front();
    ASSERT_TRUE(store.lookup(cache::cell_key(hot), hot).has_value());
    const std::size_t budget =
        static_cast<std::size_t>(fs::file_size(canonical)) / 2;
    const std::size_t dropped = store.gc_to_bytes(budget);
    EXPECT_GE(dropped, 1u);
    EXPECT_LT(dropped, cells.size());
    EXPECT_EQ(store.size(), cells.size() - dropped);
    EXPECT_TRUE(store.lookup(cache::cell_key(hot), hot).has_value());

    // The eviction compacted to disk, so a fresh open sees exactly the
    // survivors — the hot cell among them — under the byte budget.
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().loaded, cells.size() - dropped);
    EXPECT_TRUE(reopened.lookup(cache::cell_key(hot), hot).has_value());
    EXPECT_LE(fs::file_size(canonical), budget);
}

// ------------------------------------------------- external QASM cells

/** Two small distinct OpenQASM programs over one byte of difference in
 * the first (h vs x on q[0]). */
constexpr const char* kQasmA = "OPENQASM 2.0;\n"
                               "qreg q[6];\n"
                               "h q[0];\n"
                               "cx q[0], q[1];\n"
                               "cx q[2], q[3];\n"
                               "cx q[4], q[5];\n";
constexpr const char* kQasmB = "OPENQASM 2.0;\n"
                               "qreg q[6];\n"
                               "x q[0];\n"
                               "cx q[0], q[1];\n"
                               "cx q[2], q[3];\n"
                               "cx q[4], q[5];\n";

void
write_file(const fs::path& p, const std::string& text)
{
    fs::create_directories(p.parent_path());
    std::ofstream(p, std::ios::trunc) << text;
}

TEST(CacheQasm, SameFileHitsWarmAndAOneByteEditInvalidates)
{
    TempDir dir("qasm-edit");
    const fs::path file = dir.path / "bench.qasm";
    write_file(file, kQasmA);

    SweepCell cell;
    cell.spec =
        circuits::spec_for(circuits::qasm_family(file.string()), 0, 2);
    ASSERT_EQ(cell.spec.family, circuits::Family::QASM);
    ASSERT_EQ(cell.spec.num_qubits, 6);
    EXPECT_NE(cell.label().find("QASM:bench"), std::string::npos);

    const CellKey key_a = cache::cell_key(cell);
    const fs::path store_dir = dir.path / "store";

    std::string cold_csv;
    {
        ResultStore store(store_dir.string());
        SweepOptions opts;
        opts.store = &store;
        cold_csv =
            driver::sweep_csv(driver::run_sweep({cell}, opts)).to_string();
        EXPECT_EQ(store.stats().misses, 1u);
        store.flush();
    }
    {
        // Same file content: a warm run hits and reproduces the CSV
        // byte-identically.
        ResultStore store(store_dir.string());
        SweepOptions opts;
        opts.store = &store;
        const std::string warm_csv =
            driver::sweep_csv(driver::run_sweep({cell}, opts)).to_string();
        EXPECT_EQ(store.stats().hits, 1u);
        EXPECT_EQ(store.stats().misses, 0u);
        EXPECT_EQ(warm_csv, cold_csv);
    }

    // One byte changes (h -> x): the content hash moves the key, so the
    // unchanged cell spec now misses and recompiles.
    write_file(file, kQasmB);
    EXPECT_NE(cache::cell_key(cell).hex(), key_a.hex());
    {
        ResultStore store(store_dir.string());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep({cell}, opts);
        EXPECT_EQ(store.stats().hits, 0u);
        EXPECT_EQ(store.stats().misses, 1u);
    }
}

TEST(CacheQasm, QasmDirShardsMergeToTheUnshardedCsv)
{
    TempDir dir("qasm-shard");
    write_file(dir.path / "circuits" / "a.qasm", kQasmA);
    write_file(dir.path / "circuits" / "b.qasm", kQasmB);

    SweepGrid grid;
    grid.families =
        circuits::qasm_dir_families((dir.path / "circuits").string());
    ASSERT_EQ(grid.families.size(), 2u);
    grid.qubit_counts = {6};
    grid.node_counts = {2};
    grid.link_fidelities = {1.0, 0.95};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 4u);

    const std::string unsharded =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();

    const std::vector<SweepCell> part0 =
        cache::shard_filter(cells, driver::ShardSpec{0, 2});
    const std::vector<SweepCell> part1 =
        cache::shard_filter(cells, driver::ShardSpec{1, 2});
    EXPECT_EQ(part0.size() + part1.size(), cells.size());

    TempDir dir0("qasm-shard0");
    TempDir dir1("qasm-shard1");
    for (const auto& [part, d] :
         {std::make_pair(&part0, &dir0), std::make_pair(&part1, &dir1)}) {
        ResultStore store(d->str());
        SweepOptions opts;
        opts.store = &store;
        driver::run_sweep(*part, opts);
        store.flush();
    }

    ResultStore merged(dir0.str());
    EXPECT_EQ(merged.merge_from(dir1.str()), part1.size());
    const std::vector<SweepRow> rows = cache::assemble(cells, merged);
    EXPECT_EQ(driver::sweep_csv(rows).to_string(), unsharded);
}

TEST(CacheShard, FilterIsDeterministicAndSaltDependent)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const driver::ShardSpec s0{0, 3};
    EXPECT_EQ(cache::shard_filter(cells, s0).size(),
              cache::shard_filter(cells, s0).size());
    // Shards over all residues cover every cell exactly once.
    std::size_t covered = 0;
    for (int i = 0; i < 3; ++i)
        covered +=
            cache::shard_filter(cells, driver::ShardSpec{i, 3}).size();
    EXPECT_EQ(covered, cells.size());
    // One shard of one is the identity.
    EXPECT_EQ(cache::shard_filter(cells, driver::ShardSpec{0, 1}).size(),
              cells.size());
    // Bad specs fail as UserError at the membership test, never as a
    // division crash.
    const CellKey key = cache::cell_key(cells.front());
    EXPECT_THROW(cache::in_shard(key, driver::ShardSpec{0, 0}),
                 support::UserError);
    EXPECT_THROW(cache::in_shard(key, driver::ShardSpec{3, 2}),
                 support::UserError);
}

} // namespace
