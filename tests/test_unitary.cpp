/**
 * @file
 * Tests for the statevector simulator (including measurement collapse and
 * classical feed-forward) and the circuit-to-unitary builder.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qir/circuit.hpp"
#include "qir/unitary.hpp"
#include "support/rng.hpp"

namespace {

using namespace autocomm::qir;
using autocomm::support::Rng;

TEST(Statevector, StartsInZeroState)
{
    Statevector sv(2);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0, 1e-12);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, XFlipsBasisState)
{
    Statevector sv(2);
    Rng rng(0);
    sv.apply(Gate::x(0), rng);
    // Qubit 0 is the MSB: |10> has index 2.
    EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 1.0, 1e-12);
}

TEST(Statevector, HadamardCreatesSuperposition)
{
    Statevector sv(1);
    Rng rng(0);
    sv.apply(Gate::h(0), rng);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(sv.prob_one(0), 0.5, 1e-12);
}

TEST(Statevector, BellPairCorrelations)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    Statevector sv(2);
    Rng rng(0);
    sv.run(c, rng);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, 1e-12);
}

TEST(Statevector, MeasureCollapsesAndRecords)
{
    for (int forced = 0; forced <= 1; ++forced) {
        Circuit c(2, 1);
        c.h(0).cx(0, 1);
        Statevector sv(2, 1);
        Rng rng(0);
        sv.run(c, rng);
        sv.apply(Gate::measure(0, 0), rng, forced);
        EXPECT_EQ(sv.cbits()[0], forced);
        // Bell state: the other qubit collapses identically.
        EXPECT_NEAR(sv.prob_one(1), static_cast<double>(forced), 1e-12);
        EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
    }
}

TEST(Statevector, ConditionedGateRespectsClassicalBit)
{
    // Measure |1> into c0, then X on q1 conditioned on c0: q1 flips.
    Circuit c(2, 1);
    c.x(0).measure(0, 0).add(Gate::x(1).conditioned_on(0));
    Statevector sv(2, 1);
    Rng rng(0);
    sv.run(c, rng);
    EXPECT_NEAR(sv.prob_one(1), 1.0, 1e-12);

    // Without setting the bit, the conditioned gate must not fire.
    Circuit c2(2, 1);
    c2.measure(0, 0).add(Gate::x(1).conditioned_on(0));
    Statevector sv2(2, 1);
    sv2.run(c2, rng);
    EXPECT_NEAR(sv2.prob_one(1), 0.0, 1e-12);
}

TEST(Statevector, ResetForcesZero)
{
    Circuit c(1);
    c.x(0).reset(0);
    Statevector sv(1);
    Rng rng(0);
    sv.run(c, rng);
    EXPECT_NEAR(sv.prob_one(0), 0.0, 1e-12);
}

TEST(Statevector, TeleportationIdentityOnRandomState)
{
    // Teleport q0 -> q2 through EPR (q1, q2) with feed-forward.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        const double a = rng.next_double() * 3.0;
        const double b = rng.next_double() * 3.0;

        Circuit prep(3, 2);
        prep.u3(0, a, b, 0.3);
        Circuit tele(3, 2);
        tele.h(1).cx(1, 2);
        tele.cx(0, 1).h(0);
        tele.measure(1, 0).measure(0, 1);
        tele.add(Gate::x(2).conditioned_on(0));
        tele.add(Gate::z(2).conditioned_on(1));

        Statevector sv(3, 2);
        sv.run(prep, rng);
        sv.run(tele, rng);

        // Reference: the state prepared directly on q2, with q0/q1 in the
        // post-measurement basis state recorded by the classical bits.
        Circuit ref(3, 2);
        ref.u3(2, a, b, 0.3);
        if (sv.cbits()[1])
            ref.x(0);
        if (sv.cbits()[0])
            ref.x(1);
        Statevector expect(3, 2);
        Rng rng2(0);
        expect.run(ref, rng2);
        EXPECT_TRUE(sv.equal_up_to_phase(expect)) << "seed " << seed;
    }
}

TEST(Unitary, IdentityCircuit)
{
    Circuit c(2);
    EXPECT_TRUE(circuit_unitary(c).approx_equal(CMatrix::identity(4)));
}

TEST(Unitary, MatchesGateMatrix)
{
    Circuit c(2);
    c.cx(0, 1);
    EXPECT_TRUE(circuit_unitary(c).approx_equal(Gate::cx(0, 1).matrix()));
}

TEST(Unitary, RespectsQubitOrderConvention)
{
    // X on qubit 1 (LSB of a 2-qubit register) is I (x) X.
    Circuit c(2);
    c.x(1);
    const CMatrix u = circuit_unitary(c);
    EXPECT_EQ(u.at(0, 1), Complex{1});
    EXPECT_EQ(u.at(2, 3), Complex{1});
}

TEST(Unitary, CompositionOrderIsProgramOrder)
{
    // X then Z on one qubit: matrix is Z * X (later gate on the left).
    Circuit c(1);
    c.x(0).z(0);
    const CMatrix u = circuit_unitary(c);
    const CMatrix zx = Gate::z(0).matrix() * Gate::x(0).matrix();
    EXPECT_TRUE(u.approx_equal(zx));
}

TEST(Unitary, CircuitsEquivalentDetectsHXHequalsZ)
{
    Circuit a(1), b(1);
    a.h(0).x(0).h(0);
    b.z(0);
    EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Unitary, CircuitsEquivalentRejectsDifferent)
{
    Circuit a(1), b(1);
    a.x(0);
    b.z(0);
    EXPECT_FALSE(circuits_equivalent(a, b));
}

TEST(Unitary, SwapEqualsThreeCx)
{
    Circuit a(2), b(2);
    a.swap(0, 1);
    b.cx(0, 1).cx(1, 0).cx(0, 1);
    EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Unitary, GlobalPhaseIsIgnored)
{
    using std::numbers::pi;
    Circuit a(1), b(1);
    a.rz(0, pi / 2); // = S up to global phase e^{-i pi/4}
    b.s(0);
    EXPECT_TRUE(circuits_equivalent(a, b));
}

} // namespace
