/**
 * @file
 * Property tests for the driver::run_sweep compilation sweep: grid
 * expansion, metric determinism under 1 vs N threads, edge cases (empty
 * grid, single cell), and worker-exception handling.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/sweep.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm;
using driver::SweepCell;
using driver::SweepGrid;
using driver::SweepOptions;
using driver::SweepRow;

SweepGrid
small_grid()
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {8, 12};
    grid.node_counts = {2, 4};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    return grid;
}

TEST(SweepGrid, CellsIsTheCartesianProductInRowMajorOrder)
{
    const SweepGrid grid = small_grid();
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);
    EXPECT_EQ(cells.front().label(), "QFT-8-2/default");
    EXPECT_EQ(cells[1].label(), "QFT-8-2/sparse");
    EXPECT_EQ(cells[2].label(), "QFT-8-4/default");
    EXPECT_EQ(cells.back().label(), "BV-12-4/sparse");
}

TEST(SweepGrid, EmptyDimensionYieldsNoCells)
{
    SweepGrid grid = small_grid();
    grid.qubit_counts.clear();
    EXPECT_TRUE(grid.cells().empty());
}

TEST(Sweep, EmptyCellListYieldsEmptyRows)
{
    EXPECT_TRUE(driver::run_sweep({}, {}).empty());
}

TEST(Sweep, SingleCellMatchesDirectRunCell)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 10, 2};
    const SweepRow direct = driver::run_cell(cell);
    ASSERT_TRUE(direct.ok);

    const std::vector<SweepRow> rows = driver::run_sweep({cell}, {});
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_TRUE(rows[0].ok);
    EXPECT_EQ(rows[0].metrics.total_comms, direct.metrics.total_comms);
    EXPECT_EQ(rows[0].metrics.tp_comms, direct.metrics.tp_comms);
    EXPECT_DOUBLE_EQ(rows[0].schedule.makespan, direct.schedule.makespan);
    EXPECT_GT(rows[0].stats.total_gates, 0u);
    EXPECT_GT(rows[0].remote_cx, 0u);
}

TEST(Sweep, MetricsAreIdenticalUnderOneVsManyThreads)
{
    SweepGrid grid = small_grid();
    grid.with_baseline = true;
    const std::vector<SweepCell> cells = grid.cells();

    SweepOptions serial;
    serial.num_threads = 1;
    SweepOptions parallel;
    parallel.num_threads = 4;

    const std::string csv1 =
        driver::sweep_csv(driver::run_sweep(cells, serial)).to_string();
    const std::string csv4 =
        driver::sweep_csv(driver::run_sweep(cells, parallel)).to_string();
    EXPECT_EQ(csv1, csv4);
}

TEST(Sweep, RepeatedRunsAreDeterministic)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string a =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    const std::string b =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    EXPECT_EQ(a, b);
}

TEST(Sweep, InvalidCellIsRecordedAsErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, -5, 2};
    SweepCell good;
    good.spec = {circuits::Family::BV, 8, 2};

    const std::vector<SweepRow> rows = driver::run_sweep({bad, good}, {});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("positive"), std::string::npos);
    EXPECT_TRUE(rows[1].ok);
}

TEST(Sweep, RethrowErrorsPropagatesWorkerExceptionToCaller)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, -5, 2};
    SweepOptions opts;
    opts.num_threads = 2;
    opts.rethrow_errors = true;
    EXPECT_THROW(driver::run_sweep({bad}, opts), support::UserError);
}

TEST(Sweep, OptionSetsChangeTheCompilation)
{
    SweepCell def;
    def.spec = {circuits::Family::QFT, 12, 2};
    SweepCell sparse = def;
    sparse.options = *driver::find_option_set("sparse");

    const SweepRow r_def = driver::run_cell(def);
    const SweepRow r_sparse = driver::run_cell(sparse);
    ASSERT_TRUE(r_def.ok);
    ASSERT_TRUE(r_sparse.ok);
    // Disabling commutation-based aggregation degenerates to sparse
    // communication: strictly more communications for a QFT.
    EXPECT_GT(r_sparse.metrics.total_comms, r_def.metrics.total_comms);
}

TEST(Sweep, BuiltinOptionSetsAreFindableByName)
{
    for (const driver::OptionSet& s : driver::builtin_option_sets()) {
        auto found = driver::find_option_set(s.name);
        ASSERT_TRUE(found.has_value()) << s.name;
        EXPECT_EQ(found->name, s.name);
    }
    EXPECT_FALSE(driver::find_option_set("no-such-set").has_value());
}

TEST(Sweep, CsvHasOneLinePerCellPlusHeader)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string csv =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, cells.size() + 1);
}

} // namespace
