/**
 * @file
 * Property tests for the driver::run_sweep compilation sweep: grid
 * expansion, metric determinism under 1 vs N threads, edge cases (empty
 * grid, single cell), and worker-exception handling.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/sweep.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm;
using driver::SweepCell;
using driver::SweepGrid;
using driver::SweepOptions;
using driver::SweepRow;

SweepGrid
small_grid()
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {8, 12};
    grid.node_counts = {2, 4};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    return grid;
}

TEST(SweepGrid, CellsIsTheCartesianProductInRowMajorOrder)
{
    const SweepGrid grid = small_grid();
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);
    EXPECT_EQ(cells.front().label(), "QFT-8-2/default");
    EXPECT_EQ(cells[1].label(), "QFT-8-2/sparse");
    EXPECT_EQ(cells[2].label(), "QFT-8-4/default");
    EXPECT_EQ(cells.back().label(), "BV-12-4/sparse");
}

TEST(SweepGrid, EmptyDimensionYieldsNoCells)
{
    SweepGrid grid = small_grid();
    grid.qubit_counts.clear();
    EXPECT_TRUE(grid.cells().empty());
}

TEST(Sweep, EmptyCellListYieldsEmptyRows)
{
    EXPECT_TRUE(driver::run_sweep({}, {}).empty());
}

TEST(Sweep, SingleCellMatchesDirectRunCell)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 10, 2};
    const SweepRow direct = driver::run_cell(cell);
    ASSERT_TRUE(direct.ok);

    const std::vector<SweepRow> rows = driver::run_sweep({cell}, {});
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_TRUE(rows[0].ok);
    EXPECT_EQ(rows[0].metrics.total_comms, direct.metrics.total_comms);
    EXPECT_EQ(rows[0].metrics.tp_comms, direct.metrics.tp_comms);
    EXPECT_DOUBLE_EQ(rows[0].schedule.makespan, direct.schedule.makespan);
    EXPECT_GT(rows[0].stats.total_gates, 0u);
    EXPECT_GT(rows[0].remote_cx, 0u);
}

TEST(Sweep, MetricsAreIdenticalUnderOneVsManyThreads)
{
    SweepGrid grid = small_grid();
    grid.with_baseline = true;
    const std::vector<SweepCell> cells = grid.cells();

    SweepOptions serial;
    serial.num_threads = 1;
    SweepOptions parallel;
    parallel.num_threads = 4;

    const std::string csv1 =
        driver::sweep_csv(driver::run_sweep(cells, serial)).to_string();
    const std::string csv4 =
        driver::sweep_csv(driver::run_sweep(cells, parallel)).to_string();
    EXPECT_EQ(csv1, csv4);
}

TEST(Sweep, RepeatedRunsAreDeterministic)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string a =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    const std::string b =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    EXPECT_EQ(a, b);
}

TEST(Sweep, InvalidCellIsRecordedAsErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, -5, 2};
    SweepCell good;
    good.spec = {circuits::Family::BV, 8, 2};

    const std::vector<SweepRow> rows = driver::run_sweep({bad, good}, {});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("positive"), std::string::npos);
    EXPECT_TRUE(rows[1].ok);
}

TEST(Sweep, RethrowErrorsPropagatesWorkerExceptionToCaller)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, -5, 2};
    SweepOptions opts;
    opts.num_threads = 2;
    opts.rethrow_errors = true;
    EXPECT_THROW(driver::run_sweep({bad}, opts), support::UserError);
}

TEST(Sweep, OptionSetsChangeTheCompilation)
{
    SweepCell def;
    def.spec = {circuits::Family::QFT, 12, 2};
    SweepCell sparse = def;
    sparse.options = *driver::find_option_set("sparse");

    const SweepRow r_def = driver::run_cell(def);
    const SweepRow r_sparse = driver::run_cell(sparse);
    ASSERT_TRUE(r_def.ok);
    ASSERT_TRUE(r_sparse.ok);
    // Disabling commutation-based aggregation degenerates to sparse
    // communication: strictly more communications for a QFT.
    EXPECT_GT(r_sparse.metrics.total_comms, r_def.metrics.total_comms);
}

TEST(Sweep, BuiltinOptionSetsAreFindableByName)
{
    for (const driver::OptionSet& s : driver::builtin_option_sets()) {
        auto found = driver::find_option_set(s.name);
        ASSERT_TRUE(found.has_value()) << s.name;
        EXPECT_EQ(found->name, s.name);
    }
    EXPECT_FALSE(driver::find_option_set("no-such-set").has_value());
}

TEST(Sweep, CsvHasOneLinePerCellPlusHeader)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string csv =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, cells.size() + 1);
}

TEST(SweepGrid, TopologyAxisExpandsBetweenNodesAndOptions)
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT};
    grid.qubit_counts = {8};
    grid.node_counts = {2, 4};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Ring};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].label(), "QFT-8-2/default");
    EXPECT_EQ(cells[1].label(), "QFT-8-2+ring/default");
    EXPECT_EQ(cells[2].label(), "QFT-8-4/default");
    EXPECT_EQ(cells[3].label(), "QFT-8-4+ring/default");
}

TEST(SweepGrid, ShapeAxisReplacesNodeCountsAndFixesNodeCount)
{
    SweepGrid grid;
    grid.families = {circuits::Family::BV};
    grid.qubit_counts = {16};
    grid.node_counts = {999}; // must be ignored in favor of shapes
    grid.shapes = {"2x8", "1x4,2x8"};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].spec.num_nodes, 2);
    EXPECT_EQ(cells[0].label(), "BV-16-2@2x8/default");
    EXPECT_EQ(cells[1].spec.num_nodes, 3);
    EXPECT_EQ(cells[1].label(), "BV-16-3@1x4,2x8/default");
}

TEST(Sweep, HopsTotalEqualsEprPairsOnAllToAll)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.schedule.epr_pairs, 0u);
    EXPECT_EQ(r.schedule.hops_total, r.schedule.epr_pairs);
}

TEST(Sweep, RoutedTopologiesAreStrictlySlowerThanAllToAll)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    const SweepRow flat = driver::run_cell(cell);
    ASSERT_TRUE(flat.ok);

    for (hw::Topology topo : {hw::Topology::Ring, hw::Topology::Grid,
                              hw::Topology::Star}) {
        SweepCell routed = cell;
        routed.topology = topo;
        const SweepRow r = driver::run_cell(routed);
        SCOPED_TRACE(hw::topology_name(topo));
        ASSERT_TRUE(r.ok) << r.error;
        // Same compilation (aggregation is topology-blind today)...
        EXPECT_EQ(r.metrics.total_comms, flat.metrics.total_comms);
        EXPECT_EQ(r.schedule.epr_pairs, flat.schedule.epr_pairs);
        // ...but multi-hop EPR routing strictly lengthens the schedule.
        EXPECT_GT(r.schedule.hops_total, r.schedule.epr_pairs);
        EXPECT_GT(r.schedule.makespan, flat.schedule.makespan);
    }
}

TEST(Sweep, HeterogeneousShapeCellCompilesAndValidates)
{
    SweepCell cell;
    cell.spec = {circuits::Family::BV, 40, 4};
    cell.shape = "2x8,2x30";
    cell.topology = hw::Topology::Ring;
    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.stats.total_gates, 0u);
    EXPECT_EQ(r.cell.label(), "BV-40-4@2x8,2x30+ring/default");
}

TEST(Sweep, InsufficientShapeCapacityIsRecordedAsErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, 16, 2};
    bad.shape = "2x4"; // 8 < 16 qubits
    const std::vector<SweepRow> rows = driver::run_sweep({bad}, {});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("capacity"), std::string::npos)
        << rows[0].error;
}

TEST(Sweep, CsvReportsTopologyShapeAndHops)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 12, 3};
    cell.shape = "3x4";
    cell.topology = hw::Topology::Ring;
    const std::string csv =
        driver::sweep_csv(driver::run_sweep({cell}, {})).to_string();
    EXPECT_NE(csv.find("topology"), std::string::npos);
    EXPECT_NE(csv.find("shape"), std::string::npos);
    EXPECT_NE(csv.find("hops_total"), std::string::npos);
    EXPECT_NE(csv.find("ring"), std::string::npos);
    // The shape field contains a comma only when the spec does; "3x4"
    // must appear unquoted.
    EXPECT_NE(csv.find("3x4"), std::string::npos);
}

TEST(Sweep, TopologyShapeGridIsDeterministicAcrossThreads)
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {12};
    grid.shapes = {"3x4", "1x6,2x3"};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Ring,
                       hw::Topology::Star};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u * 2u * 3u);

    SweepOptions serial;
    serial.num_threads = 1;
    SweepOptions parallel;
    parallel.num_threads = 4;
    const std::string csv1 =
        driver::sweep_csv(driver::run_sweep(cells, serial)).to_string();
    const std::string csv4 =
        driver::sweep_csv(driver::run_sweep(cells, parallel)).to_string();
    EXPECT_EQ(csv1, csv4);
}

TEST(Sweep, GptpBaselineFactorsPopulateOnRequest)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 12, 2};
    cell.with_gptp = true;
    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(r.gptp_factors.has_value());
    EXPECT_GT(r.gptp_factors->improv_factor, 0.0);
    EXPECT_GT(r.gptp_factors->lat_dec_factor, 0.0);
    SweepCell plain = cell;
    plain.with_gptp = false;
    EXPECT_FALSE(driver::run_cell(plain).gptp_factors.has_value());
}

} // namespace
