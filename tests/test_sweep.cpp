/**
 * @file
 * Property tests for the driver::run_sweep compilation sweep: grid
 * expansion, metric determinism under 1 vs N threads, edge cases (empty
 * grid, single cell), and worker-exception handling.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/sweep.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm;
using driver::SweepCell;
using driver::SweepGrid;
using driver::SweepOptions;
using driver::SweepRow;

SweepGrid
small_grid()
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {8, 12};
    grid.node_counts = {2, 4};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    return grid;
}

TEST(SweepGrid, CellsIsTheCartesianProductInRowMajorOrder)
{
    const SweepGrid grid = small_grid();
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);
    EXPECT_EQ(cells.front().label(), "QFT-8-2/default");
    EXPECT_EQ(cells[1].label(), "QFT-8-2/sparse");
    EXPECT_EQ(cells[2].label(), "QFT-8-4/default");
    EXPECT_EQ(cells.back().label(), "BV-12-4/sparse");
}

TEST(SweepGrid, EmptyDimensionYieldsNoCells)
{
    SweepGrid grid = small_grid();
    grid.qubit_counts.clear();
    EXPECT_TRUE(grid.cells().empty());
}

TEST(Sweep, EmptyCellListYieldsEmptyRows)
{
    EXPECT_TRUE(driver::run_sweep({}, {}).empty());
}

TEST(Sweep, SingleCellMatchesDirectRunCell)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 10, 2};
    const SweepRow direct = driver::run_cell(cell);
    ASSERT_TRUE(direct.ok);

    const std::vector<SweepRow> rows = driver::run_sweep({cell}, {});
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_TRUE(rows[0].ok);
    EXPECT_EQ(rows[0].metrics.total_comms, direct.metrics.total_comms);
    EXPECT_EQ(rows[0].metrics.tp_comms, direct.metrics.tp_comms);
    EXPECT_DOUBLE_EQ(rows[0].schedule.makespan, direct.schedule.makespan);
    EXPECT_GT(rows[0].stats.total_gates, 0u);
    EXPECT_GT(rows[0].remote_cx, 0u);
}

TEST(Sweep, MetricsAreIdenticalUnderOneVsManyThreads)
{
    SweepGrid grid = small_grid();
    grid.with_baseline = true;
    const std::vector<SweepCell> cells = grid.cells();

    SweepOptions serial;
    serial.num_threads = 1;
    SweepOptions parallel;
    parallel.num_threads = 4;

    const std::string csv1 =
        driver::sweep_csv(driver::run_sweep(cells, serial)).to_string();
    const std::string csv4 =
        driver::sweep_csv(driver::run_sweep(cells, parallel)).to_string();
    EXPECT_EQ(csv1, csv4);
}

TEST(Sweep, PipelineCsvIsByteIdenticalAtOneTwoAndEightThreads)
{
    // The stage pipeline overlaps decompose -> partition -> compile
    // across cells instead of running them as barrier phases. Mixing
    // healthy cells with a geometry-reject cell and a bad-program cell
    // exercises every stage's error path; the CSV must stay
    // byte-identical no matter how many workers race through the DAG.
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {10, 12};
    grid.node_counts = {2, 3};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    std::vector<SweepCell> cells = grid.cells();
    SweepCell bad_geom;
    bad_geom.spec = {circuits::Family::QFT, 16, 2};
    bad_geom.shape = "2x4"; // 8 < 16 qubits
    cells.push_back(bad_geom);
    SweepCell bad_prog;
    bad_prog.spec = {circuits::Family::QFT, -5, 2};
    cells.push_back(bad_prog);

    std::string baseline;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        SweepOptions opts;
        opts.num_threads = threads;
        const std::string csv =
            driver::sweep_csv(driver::run_sweep(cells, opts)).to_string();
        if (baseline.empty())
            baseline = csv;
        else
            EXPECT_EQ(csv, baseline) << threads << " threads";
    }
}

TEST(Sweep, RepeatedRunsAreDeterministic)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string a =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    const std::string b =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    EXPECT_EQ(a, b);
}

TEST(Sweep, InvalidCellIsRecordedAsErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, -5, 2};
    SweepCell good;
    good.spec = {circuits::Family::BV, 8, 2};

    const std::vector<SweepRow> rows = driver::run_sweep({bad, good}, {});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("positive"), std::string::npos);
    EXPECT_TRUE(rows[1].ok);
}

TEST(Sweep, RethrowErrorsPropagatesWorkerExceptionToCaller)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, -5, 2};
    SweepOptions opts;
    opts.num_threads = 2;
    opts.rethrow_errors = true;
    EXPECT_THROW(driver::run_sweep({bad}, opts), support::UserError);
}

TEST(Sweep, OptionSetsChangeTheCompilation)
{
    SweepCell def;
    def.spec = {circuits::Family::QFT, 12, 2};
    SweepCell sparse = def;
    sparse.options = *driver::find_option_set("sparse");

    const SweepRow r_def = driver::run_cell(def);
    const SweepRow r_sparse = driver::run_cell(sparse);
    ASSERT_TRUE(r_def.ok);
    ASSERT_TRUE(r_sparse.ok);
    // Disabling commutation-based aggregation degenerates to sparse
    // communication: strictly more communications for a QFT.
    EXPECT_GT(r_sparse.metrics.total_comms, r_def.metrics.total_comms);
}

TEST(Sweep, BuiltinOptionSetsAreFindableByName)
{
    for (const driver::OptionSet& s : driver::builtin_option_sets()) {
        auto found = driver::find_option_set(s.name);
        ASSERT_TRUE(found.has_value()) << s.name;
        EXPECT_EQ(found->name, s.name);
    }
    EXPECT_FALSE(driver::find_option_set("no-such-set").has_value());
}

TEST(Sweep, CsvHasOneLinePerCellPlusHeader)
{
    const std::vector<SweepCell> cells = small_grid().cells();
    const std::string csv =
        driver::sweep_csv(driver::run_sweep(cells, {})).to_string();
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, cells.size() + 1);
}

TEST(SweepGrid, TopologyAxisExpandsBetweenNodesAndOptions)
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT};
    grid.qubit_counts = {8};
    grid.node_counts = {2, 4};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Ring};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].label(), "QFT-8-2/default");
    EXPECT_EQ(cells[1].label(), "QFT-8-2+ring/default");
    EXPECT_EQ(cells[2].label(), "QFT-8-4/default");
    EXPECT_EQ(cells[3].label(), "QFT-8-4+ring/default");
}

TEST(SweepGrid, ShapeAxisReplacesNodeCountsAndFixesNodeCount)
{
    SweepGrid grid;
    grid.families = {circuits::Family::BV};
    grid.qubit_counts = {16};
    grid.node_counts = {999}; // must be ignored in favor of shapes
    grid.shapes = {"2x8", "1x4,2x8"};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].spec.num_nodes, 2);
    EXPECT_EQ(cells[0].label(), "BV-16-2@2x8/default");
    EXPECT_EQ(cells[1].spec.num_nodes, 3);
    EXPECT_EQ(cells[1].label(), "BV-16-3@1x4,2x8/default");
}

TEST(Sweep, HopsTotalEqualsEprPairsOnAllToAll)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.schedule.epr_pairs, 0u);
    EXPECT_EQ(r.schedule.hops_total, r.schedule.epr_pairs);
}

TEST(Sweep, RoutedTopologiesAreStrictlySlowerThanAllToAll)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    const SweepRow flat = driver::run_cell(cell);
    ASSERT_TRUE(flat.ok);

    for (hw::Topology topo : {hw::Topology::Ring, hw::Topology::Grid,
                              hw::Topology::Star}) {
        SweepCell routed = cell;
        routed.topology = topo;
        const SweepRow r = driver::run_cell(routed);
        SCOPED_TRACE(hw::topology_name(topo));
        ASSERT_TRUE(r.ok) << r.error;
        // Same compilation (aggregation is topology-blind today)...
        EXPECT_EQ(r.metrics.total_comms, flat.metrics.total_comms);
        EXPECT_EQ(r.schedule.epr_pairs, flat.schedule.epr_pairs);
        // ...but multi-hop EPR routing strictly lengthens the schedule.
        EXPECT_GT(r.schedule.hops_total, r.schedule.epr_pairs);
        EXPECT_GT(r.schedule.makespan, flat.schedule.makespan);
    }
}

TEST(Sweep, HeterogeneousShapeCellCompilesAndValidates)
{
    SweepCell cell;
    cell.spec = {circuits::Family::BV, 40, 4};
    cell.shape = "2x8,2x30";
    cell.topology = hw::Topology::Ring;
    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.stats.total_gates, 0u);
    EXPECT_EQ(r.cell.label(), "BV-40-4@2x8,2x30+ring/default");
}

TEST(Sweep, InsufficientShapeCapacityIsRecordedAsErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, 16, 2};
    bad.shape = "2x4"; // 8 < 16 qubits
    const std::vector<SweepRow> rows = driver::run_sweep({bad}, {});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("capacity"), std::string::npos)
        << rows[0].error;
}

TEST(Sweep, CsvReportsTopologyShapeAndHops)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 12, 3};
    cell.shape = "3x4";
    cell.topology = hw::Topology::Ring;
    const std::string csv =
        driver::sweep_csv(driver::run_sweep({cell}, {})).to_string();
    EXPECT_NE(csv.find("topology"), std::string::npos);
    EXPECT_NE(csv.find("shape"), std::string::npos);
    EXPECT_NE(csv.find("hops_total"), std::string::npos);
    EXPECT_NE(csv.find("ring"), std::string::npos);
    // The shape field contains a comma only when the spec does; "3x4"
    // must appear unquoted.
    EXPECT_NE(csv.find("3x4"), std::string::npos);
}

TEST(Sweep, TopologyShapeGridIsDeterministicAcrossThreads)
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {12};
    grid.shapes = {"3x4", "1x6,2x3"};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Ring,
                       hw::Topology::Star};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u * 2u * 3u);

    SweepOptions serial;
    serial.num_threads = 1;
    SweepOptions parallel;
    parallel.num_threads = 4;
    const std::string csv1 =
        driver::sweep_csv(driver::run_sweep(cells, serial)).to_string();
    const std::string csv4 =
        driver::sweep_csv(driver::run_sweep(cells, parallel)).to_string();
    EXPECT_EQ(csv1, csv4);
}

TEST(SweepGrid, NoiseAxesExpandBetweenTopologyAndOptions)
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT};
    grid.qubit_counts = {8};
    grid.node_counts = {2};
    grid.link_fidelities = {1.0, 0.95};
    grid.target_fidelities = {0.0, 0.99};
    grid.link_bandwidths = {0, 2};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].label(), "QFT-8-2/default");
    EXPECT_EQ(cells[1].label(), "QFT-8-2~b2/default");
    EXPECT_EQ(cells[2].label(), "QFT-8-2~t0.99/default");
    EXPECT_EQ(cells[4].label(), "QFT-8-2~f0.95/default");
    EXPECT_EQ(cells.back().label(), "QFT-8-2~f0.95~t0.99~b2/default");
}

TEST(Sweep, NoisyCellIsStrictlySlowerAndReportsPurification)
{
    SweepCell clean;
    clean.spec = {circuits::Family::QFT, 16, 4};
    SweepCell noisy = clean;
    noisy.link_fidelity = 0.95;
    noisy.target_fidelity = 0.99;

    const SweepRow base = driver::run_cell(clean);
    const SweepRow r = driver::run_cell(noisy);
    ASSERT_TRUE(base.ok);
    ASSERT_TRUE(r.ok) << r.error;

    // Same compilation (aggregation is noise-blind)...
    EXPECT_EQ(r.metrics.total_comms, base.metrics.total_comms);
    EXPECT_EQ(r.schedule.epr_pairs, base.schedule.epr_pairs);
    // ...but purification multiplies raw pairs and strictly lengthens
    // the schedule, and the fidelity estimate drops below 1.
    EXPECT_GT(r.schedule.purify_rounds, 0u);
    EXPECT_GT(r.schedule.epr_raw_pairs, r.schedule.epr_pairs);
    EXPECT_GT(r.schedule.makespan, base.schedule.makespan);
    EXPECT_LT(r.schedule.program_fidelity(), 1.0);
    EXPECT_GT(r.schedule.program_fidelity(), 0.0);

    EXPECT_EQ(base.schedule.purify_rounds, 0u);
    EXPECT_EQ(base.schedule.epr_raw_pairs, base.schedule.epr_pairs);
    EXPECT_DOUBLE_EQ(base.schedule.program_fidelity(), 1.0);
}

TEST(Sweep, LinkBandwidthContentionShowsUpInTheSweep)
{
    SweepCell noisy;
    noisy.spec = {circuits::Family::QFT, 16, 4};
    noisy.link_fidelity = 0.95;
    noisy.target_fidelity = 0.99;
    SweepCell capped = noisy;
    capped.link_bandwidth = 1;

    const SweepRow fast = driver::run_cell(noisy);
    const SweepRow slow = driver::run_cell(capped);
    ASSERT_TRUE(fast.ok);
    ASSERT_TRUE(slow.ok) << slow.error;
    EXPECT_EQ(slow.schedule.epr_raw_pairs, fast.schedule.epr_raw_pairs);
    EXPECT_GT(slow.schedule.makespan, fast.schedule.makespan);
}

TEST(Sweep, UnreachableTargetIsRecordedAsFriendlyErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, 16, 4};
    bad.link_fidelity = 0.6;
    bad.target_fidelity = 0.99;
    bad.topology = hw::Topology::Ring; // 2-hop pairs fall below 0.5
    const std::vector<SweepRow> rows = driver::run_sweep({bad}, {});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("purification"), std::string::npos)
        << rows[0].error;
}

TEST(Sweep, CsvReportsNoiseColumnsAndValues)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 12, 3};
    cell.link_fidelity = 0.95;
    cell.target_fidelity = 0.99;
    cell.link_bandwidth = 4;
    const std::string csv =
        driver::sweep_csv(driver::run_sweep({cell}, {})).to_string();
    for (const char* col :
         {"link_fidelity", "target_fidelity", "link_bandwidth",
          "epr_raw", "purify_rounds", "program_fidelity"})
        EXPECT_NE(csv.find(col), std::string::npos) << col;
    EXPECT_NE(csv.find("0.95"), std::string::npos);
    EXPECT_NE(csv.find("0.99"), std::string::npos);
}

TEST(Sweep, MemoizedSweepMatchesDirectRunCell)
{
    // run_sweep memoizes circuits, interaction graphs, and OEE mappings
    // across cells; every row must still equal an uncached run_cell.
    SweepGrid grid;
    grid.families = {circuits::Family::QFT, circuits::Family::BV};
    grid.qubit_counts = {12};
    grid.node_counts = {3};
    grid.topologies = {hw::Topology::AllToAll, hw::Topology::Ring};
    grid.link_fidelities = {1.0, 0.95};
    grid.target_fidelities = {0.97};
    grid.option_sets = {driver::OptionSet{},
                        *driver::find_option_set("sparse")};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 16u);

    const std::vector<SweepRow> rows = driver::run_sweep(cells, {});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepRow direct = driver::run_cell(cells[i]);
        SCOPED_TRACE(cells[i].label());
        ASSERT_EQ(rows[i].ok, direct.ok);
        EXPECT_EQ(rows[i].metrics.total_comms, direct.metrics.total_comms);
        EXPECT_EQ(rows[i].remote_cx, direct.remote_cx);
        EXPECT_DOUBLE_EQ(rows[i].schedule.makespan,
                         direct.schedule.makespan);
        EXPECT_EQ(rows[i].schedule.epr_raw_pairs,
                  direct.schedule.epr_raw_pairs);
    }
}

// ------------------------------------------------- CLI axis-list parsing

TEST(SweepParse, IntListEchoesTheOffendingToken)
{
    EXPECT_EQ(driver::parse_int_list("2,4,8", "--nodes"),
              (std::vector<int>{2, 4, 8}));
    try {
        driver::parse_int_list("2,banana", "--nodes");
        FAIL() << "expected UserError";
    } catch (const support::UserError& e) {
        EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("--nodes"), std::string::npos);
    }
    EXPECT_THROW(driver::parse_int_list("0", "--nodes"),
                 support::UserError); // below default minimum
    EXPECT_EQ(driver::parse_int_list("0,3", "--link-bandwidth", 0),
              (std::vector<int>{0, 3}));
    EXPECT_THROW(driver::parse_int_list("", "--nodes"),
                 support::UserError);
}

TEST(SweepParse, FidelityListValidatesTheRange)
{
    EXPECT_EQ(driver::parse_fidelity_list("0.9,1", "--link-fidelity"),
              (std::vector<double>{0.9, 1.0}));
    try {
        driver::parse_fidelity_list("1.5", "--link-fidelity");
        FAIL() << "expected UserError";
    } catch (const support::UserError& e) {
        EXPECT_NE(std::string(e.what()).find("1.5"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("--link-fidelity"),
                  std::string::npos);
    }
    // 0 is rejected unless it means "disabled" (purification targets).
    EXPECT_THROW(driver::parse_fidelity_list("0", "--link-fidelity"),
                 support::UserError);
    EXPECT_EQ(driver::parse_fidelity_list("0,0.99", "--target-fidelity",
                                          /*zero_disables=*/true),
              (std::vector<double>{0.0, 0.99}));
    // Purification targets live in (0, 1): exactly 1 is asymptotically
    // unreachable and must fail at parse time, not per cell.
    EXPECT_THROW(driver::parse_fidelity_list("1", "--target-fidelity",
                                             /*zero_disables=*/true),
                 support::UserError);
}

TEST(SweepParse, TopologyListEchoesTheOffendingToken)
{
    EXPECT_EQ(driver::parse_topology_list("ring,star", "--topology"),
              (std::vector<hw::Topology>{hw::Topology::Ring,
                                         hw::Topology::Star}));
    try {
        driver::parse_topology_list("ring,torus", "--topology");
        FAIL() << "expected UserError";
    } catch (const support::UserError& e) {
        EXPECT_NE(std::string(e.what()).find("torus"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("all_to_all"),
                  std::string::npos); // lists the valid names
    }
}

TEST(SweepParse, ShapeListEchoesTheOffendingSpec)
{
    EXPECT_EQ(driver::parse_shape_list("4x10,2x30;8x10", "--shape"),
              (std::vector<std::string>{"4x10,2x30", "8x10"}));
    try {
        driver::parse_shape_list("4x10;2y30", "--shape");
        FAIL() << "expected UserError";
    } catch (const support::UserError& e) {
        EXPECT_NE(std::string(e.what()).find("2y30"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("--shape"),
                  std::string::npos);
    }
    EXPECT_THROW(driver::parse_shape_list("", "--shape"),
                 support::UserError);
}

TEST(SweepParse, OverrideListParsesSortsAndCanonicalizes)
{
    const std::vector<driver::LinkValue> got = driver::parse_override_list(
        "2-3:0.85,1-0:0.92", "--link-fidelity-override",
        /*integer_value=*/false);
    ASSERT_EQ(got.size(), 2u);
    // "1-0" normalizes to (0, 1) and sorts first.
    EXPECT_EQ(got[0].a, 0);
    EXPECT_EQ(got[0].b, 1);
    EXPECT_DOUBLE_EQ(got[0].value, 0.92);
    EXPECT_EQ(got[1].a, 2);
    EXPECT_EQ(got[1].b, 3);
    EXPECT_EQ(driver::override_spec(got), "0-1:0.92,2-3:0.85");

    const std::vector<driver::LinkValue> bw = driver::parse_override_list(
        "0-1:2,1-2:0", "--link-bandwidth-override", /*integer_value=*/true);
    ASSERT_EQ(bw.size(), 2u);
    EXPECT_DOUBLE_EQ(bw[0].value, 2.0);
    EXPECT_DOUBLE_EQ(bw[1].value, 0.0); // 0 = unlimited link
}

TEST(SweepParse, MalformedOverrideSpecsEchoTheToken)
{
    auto expect_error = [](const std::string& list, bool integer_value,
                           const std::string& needle) {
        try {
            driver::parse_override_list(list, "--flag", integer_value);
            FAIL() << "expected UserError for \"" << list << "\"";
        } catch (const support::UserError& e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << list << " -> " << e.what();
            EXPECT_NE(std::string(e.what()).find("--flag"),
                      std::string::npos);
        }
    };
    expect_error("a-b:", false, "a-b:");        // missing value, bad nodes
    expect_error("x-y:1.5", false, "x-y:1.5");  // non-integer nodes
    expect_error("0-1:", false, "0-1:");        // missing value
    expect_error("0-1:1.5", false, "1.5");      // fidelity out of range
    expect_error("0-1:0.1", false, "0.1");      // below the Werner floor
    expect_error("0-0:0.9", false, "distinct"); // self link
    expect_error("0-1:0.9,1-0:0.8", false, "twice"); // duplicate link
    expect_error("0-1:2.5", true, "2.5");       // non-integer bandwidth
    expect_error("0-1:-1", true, "-1");         // negative bandwidth
    expect_error("", false, "empty");
}

TEST(SweepParse, ShardSpecValidatesIndexAndCount)
{
    const driver::ShardSpec s = driver::parse_shard("1/4", "--shard");
    EXPECT_EQ(s.index, 1);
    EXPECT_EQ(s.count, 4);
    EXPECT_EQ(driver::parse_shard("0/1", "--shard").count, 1);

    for (const char* bad :
         {"0/0", "3/2", "2/2", "-1/2", "banana", "1", "1/", "/2", "1/b"}) {
        try {
            driver::parse_shard(bad, "--shard");
            FAIL() << "expected UserError for \"" << bad << "\"";
        } catch (const support::UserError& e) {
            EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
                << bad << " -> " << e.what();
        }
    }
}

TEST(Sweep, FidelityOverrideDetoursAndShowsUpInLabelAndCsv)
{
    // Ring of 4: route 0-1 directly, or detour 0-3-2-1. Degrading the
    // 0-1 fiber hard makes every axis visible: label, CSV, and metrics.
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 16, 4};
    cell.topology = hw::Topology::Ring;
    cell.link_fidelity = 0.97;
    cell.target_fidelity = 0.9;
    cell.link_fidelity_overrides = {{0, 1, 0.5}};
    EXPECT_EQ(cell.label(), "QFT-16-4+ring~f0.97~t0.9~F(0-1:0.5)/default");

    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok) << r.error;

    SweepCell uniform = cell;
    uniform.link_fidelity_overrides.clear();
    const SweepRow u = driver::run_cell(uniform);
    ASSERT_TRUE(u.ok) << u.error;
    // The degraded fiber forces detours (more hops) somewhere.
    EXPECT_GT(r.schedule.hops_total, u.schedule.hops_total);

    const std::string csv =
        driver::sweep_csv({r}).to_string();
    EXPECT_NE(csv.find("fidelity_overrides"), std::string::npos);
    EXPECT_NE(csv.find("0-1:0.5"), std::string::npos);
}

TEST(Sweep, BandwidthOverrideCongestsOnlyTheNamedLink)
{
    SweepCell noisy;
    noisy.spec = {circuits::Family::QFT, 16, 4};
    noisy.link_fidelity = 0.95;
    noisy.target_fidelity = 0.99;

    SweepCell capped = noisy;
    capped.link_bandwidth_overrides = {{0, 1, 1.0}};

    const SweepRow fast = driver::run_cell(noisy);
    const SweepRow slow = driver::run_cell(capped);
    ASSERT_TRUE(fast.ok);
    ASSERT_TRUE(slow.ok) << slow.error;
    // Same compilation and EPR demand, longer schedule: the capped link
    // serializes its purification waves.
    EXPECT_EQ(slow.schedule.epr_raw_pairs, fast.schedule.epr_raw_pairs);
    EXPECT_GT(slow.schedule.makespan, fast.schedule.makespan);
}

TEST(Sweep, OverrideNamingAMissingNodeIsAFriendlyErrorRow)
{
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, 16, 4};
    bad.link_fidelity_overrides = {{0, 7, 0.9}}; // node 7 of a 4-node box
    const std::vector<SweepRow> rows = driver::run_sweep({bad}, {});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("outside"), std::string::npos)
        << rows[0].error;
}

TEST(Sweep, OverrideOnANonEdgeIsRejectedNotSilentlyInert)
{
    // 0-2 is not an edge of a 4-node ring; an inert override would
    // still color the label/CSV/cache key while changing nothing.
    SweepCell bad;
    bad.spec = {circuits::Family::QFT, 16, 4};
    bad.topology = hw::Topology::Ring;
    bad.link_bandwidth_overrides = {{0, 2, 2.0}};
    const std::vector<SweepRow> rows = driver::run_sweep({bad}, {});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].ok);
    EXPECT_NE(rows[0].error.find("not a physical link"),
              std::string::npos)
        << rows[0].error;
}

TEST(SweepGrid, OverridesApplyToEveryCell)
{
    SweepGrid grid;
    grid.families = {circuits::Family::QFT};
    grid.qubit_counts = {8};
    grid.node_counts = {2};
    grid.link_fidelities = {0.95, 0.9};
    grid.link_fidelity_overrides = {{0, 1, 0.93}};
    const std::vector<SweepCell> cells = grid.cells();
    ASSERT_EQ(cells.size(), 2u);
    for (const SweepCell& c : cells)
        EXPECT_EQ(c.link_fidelity_overrides,
                  grid.link_fidelity_overrides);
}

TEST(Sweep, GptpBaselineFactorsPopulateOnRequest)
{
    SweepCell cell;
    cell.spec = {circuits::Family::QFT, 12, 2};
    cell.with_gptp = true;
    const SweepRow r = driver::run_cell(cell);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(r.gptp_factors.has_value());
    EXPECT_GT(r.gptp_factors->improv_factor, 0.0);
    EXPECT_GT(r.gptp_factors->lat_dec_factor, 0.0);
    SweepCell plain = cell;
    plain.with_gptp = false;
    EXPECT_FALSE(driver::run_cell(plain).gptp_factors.has_value());
}

} // namespace
