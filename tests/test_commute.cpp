/**
 * @file
 * Tests for the commutation engine, including an exhaustive soundness
 * sweep of the rule engine against exact matrix commutators (the rule
 * engine may say "unknown" for commuting pairs, but must never claim a
 * non-commuting pair commutes).
 */
#include <gtest/gtest.h>

#include <vector>

#include "qir/commute.hpp"
#include "qir/gate.hpp"

namespace {

using namespace autocomm::qir;
using autocomm::QubitId;

TEST(Commute, DisjointGatesAlwaysCommute)
{
    EXPECT_TRUE(gates_commute(Gate::h(0), Gate::h(1)));
    EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(2, 3)));
    EXPECT_TRUE(gates_commute(Gate::measure(0, 0), Gate::x(1)) == false)
        << "non-unitary gates are ordering fences even when disjoint";
}

TEST(Commute, DiagonalThroughControl)
{
    // Fig. 7: phase gates commute through CX controls.
    EXPECT_TRUE(gates_commute(Gate::rz(0, 0.3), Gate::cx(0, 1)));
    EXPECT_TRUE(gates_commute(Gate::t(0), Gate::cx(0, 1)));
    EXPECT_TRUE(gates_commute(Gate::z(0), Gate::cx(0, 1)));
    // ...but not through targets.
    EXPECT_FALSE(gates_commute(Gate::rz(1, 0.3), Gate::cx(0, 1)));
    EXPECT_FALSE(gates_commute(Gate::t(1), Gate::cx(0, 1)));
}

TEST(Commute, XRotationThroughTarget)
{
    // Fig. 7: X rotations commute through CX targets.
    EXPECT_TRUE(gates_commute(Gate::rx(1, 0.4), Gate::cx(0, 1)));
    EXPECT_TRUE(gates_commute(Gate::x(1), Gate::cx(0, 1)));
    EXPECT_FALSE(gates_commute(Gate::rx(0, 0.4), Gate::cx(0, 1)));
    EXPECT_FALSE(gates_commute(Gate::x(0), Gate::cx(0, 1)));
}

TEST(Commute, CxPairsSharingControlOrTarget)
{
    EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(0, 2)));
    EXPECT_TRUE(gates_commute(Gate::cx(0, 2), Gate::cx(1, 2)));
    EXPECT_FALSE(gates_commute(Gate::cx(0, 1), Gate::cx(1, 2)));
    EXPECT_FALSE(gates_commute(Gate::cx(0, 1), Gate::cx(1, 0)));
}

TEST(Commute, DiagonalsCommutePairwise)
{
    EXPECT_TRUE(gates_commute(Gate::cz(0, 1), Gate::cz(1, 2)));
    EXPECT_TRUE(gates_commute(Gate::rzz(0, 1, 0.5), Gate::rzz(1, 2, 0.7)));
    EXPECT_TRUE(gates_commute(Gate::cp(0, 1, 0.5), Gate::crz(1, 2, 0.7)));
    EXPECT_TRUE(gates_commute(Gate::rzz(0, 1, 0.5), Gate::cx(2, 1)) ==
                false);
    EXPECT_TRUE(gates_commute(Gate::rzz(0, 1, 0.5), Gate::cx(1, 2)));
}

TEST(Commute, IdenticalGatesCommute)
{
    EXPECT_TRUE(gates_commute(Gate::h(0), Gate::h(0)));
    EXPECT_TRUE(gates_commute(Gate::swap(0, 1), Gate::swap(0, 1)));
    EXPECT_TRUE(gates_commute(Gate::u3(0, 1, 2, 3), Gate::u3(0, 1, 2, 3)));
}

TEST(Commute, HUnknownAcrossSharedQubit)
{
    EXPECT_FALSE(gates_commute(Gate::h(0), Gate::x(0)));
    EXPECT_FALSE(gates_commute(Gate::h(0), Gate::cx(0, 1)));
    EXPECT_FALSE(gates_commute(Gate::swap(0, 1), Gate::cx(0, 2)));
}

TEST(Commute, ConditionedGatesAreFences)
{
    EXPECT_FALSE(gates_commute(Gate::x(0).conditioned_on(0), Gate::x(1)));
}

TEST(Commute, ExactOracleBasics)
{
    EXPECT_TRUE(gates_commute_exact(Gate::rz(0, 0.3), Gate::cx(0, 1)));
    EXPECT_FALSE(gates_commute_exact(Gate::x(0), Gate::z(0)));
    // CX(0,1) and CX(1,0) genuinely do not commute.
    EXPECT_FALSE(gates_commute_exact(Gate::cx(0, 1), Gate::cx(1, 0)));
    // Y on a CX target does not commute with the CX.
    EXPECT_FALSE(gates_commute_exact(Gate::y(1), Gate::cx(0, 1)));
}

/**
 * Property sweep: the rule engine must be SOUND — whenever it claims two
 * gates commute, the exact matrix commutator must vanish. We sweep all
 * gate kinds on overlapping qubit assignments.
 */
class CommuteSoundness : public ::testing::TestWithParam<int>
{
};

std::vector<Gate>
gate_zoo()
{
    std::vector<Gate> zoo;
    const std::vector<QubitId> qs1 = {0, 1, 2};
    for (QubitId q : qs1) {
        zoo.push_back(Gate::i(q));
        zoo.push_back(Gate::h(q));
        zoo.push_back(Gate::x(q));
        zoo.push_back(Gate::y(q));
        zoo.push_back(Gate::z(q));
        zoo.push_back(Gate::s(q));
        zoo.push_back(Gate::t(q));
        zoo.push_back(Gate::tdg(q));
        zoo.push_back(Gate::sx(q));
        zoo.push_back(Gate::rx(q, 0.31));
        zoo.push_back(Gate::ry(q, 0.41));
        zoo.push_back(Gate::rz(q, 0.53));
        zoo.push_back(Gate::p(q, 0.27));
        zoo.push_back(Gate::u3(q, 0.2, 0.3, 0.4));
    }
    const std::vector<std::pair<QubitId, QubitId>> qs2 = {
        {0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}};
    for (auto [a, b] : qs2) {
        zoo.push_back(Gate::cx(a, b));
        zoo.push_back(Gate::cz(a, b));
        zoo.push_back(Gate::cp(a, b, 0.37));
        zoo.push_back(Gate::crz(a, b, 0.61));
        zoo.push_back(Gate::rzz(a, b, 0.43));
        zoo.push_back(Gate::swap(a, b));
    }
    zoo.push_back(Gate::ccx(0, 1, 2));
    zoo.push_back(Gate::ccx(2, 0, 1));
    return zoo;
}

TEST_P(CommuteSoundness, RuleImpliesExact)
{
    const auto zoo = gate_zoo();
    const int chunk = GetParam();
    const std::size_t begin = static_cast<std::size_t>(chunk) * zoo.size() / 4;
    const std::size_t end = static_cast<std::size_t>(chunk + 1) * zoo.size() / 4;
    for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < zoo.size(); ++j) {
            if (gates_commute(zoo[i], zoo[j])) {
                EXPECT_TRUE(gates_commute_exact(zoo[i], zoo[j]))
                    << zoo[i].to_string() << " vs " << zoo[j].to_string();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CommuteSoundness,
                         ::testing::Values(0, 1, 2, 3));

TEST(Commute, RuleIsSymmetric)
{
    const auto zoo = gate_zoo();
    for (std::size_t i = 0; i < zoo.size(); ++i)
        for (std::size_t j = i; j < zoo.size(); ++j)
            EXPECT_EQ(gates_commute(zoo[i], zoo[j]),
                      gates_commute(zoo[j], zoo[i]))
                << zoo[i].to_string() << " vs " << zoo[j].to_string();
}

TEST(BlockContextTest, EmptyCommutesWithEverything)
{
    BlockContext ctx;
    EXPECT_TRUE(ctx.empty());
    EXPECT_TRUE(ctx.commutes(Gate::h(0)));
    EXPECT_TRUE(ctx.commutes(Gate::cx(0, 1)));
}

TEST(BlockContextTest, TracksPerQubitMasks)
{
    BlockContext ctx;
    ctx.absorb(Gate::cx(0, 1)); // q0: diag, q1: x
    EXPECT_TRUE(ctx.touches(0));
    EXPECT_TRUE(ctx.touches(1));
    EXPECT_FALSE(ctx.touches(2));
    EXPECT_EQ(ctx.mask(0), kAxisDiag);
    EXPECT_EQ(ctx.mask(1), kAxisX);

    EXPECT_TRUE(ctx.commutes(Gate::rz(0, 0.5)));
    EXPECT_TRUE(ctx.commutes(Gate::rx(1, 0.5)));
    EXPECT_TRUE(ctx.commutes(Gate::cx(0, 2)));
    EXPECT_FALSE(ctx.commutes(Gate::rz(1, 0.5)));
    EXPECT_FALSE(ctx.commutes(Gate::cx(1, 2)));
    EXPECT_TRUE(ctx.commutes(Gate::cx(2, 1)));
}

TEST(BlockContextTest, MasksTightenMonotonically)
{
    BlockContext ctx;
    ctx.absorb(Gate::cx(0, 1));
    ctx.absorb(Gate::cx(1, 0)); // q0 now diag&x = 0, q1 x&diag = 0
    EXPECT_EQ(ctx.mask(0), 0);
    EXPECT_EQ(ctx.mask(1), 0);
    EXPECT_FALSE(ctx.commutes(Gate::rz(0, 0.1)));
    EXPECT_FALSE(ctx.commutes(Gate::rx(1, 0.1)));
    EXPECT_TRUE(ctx.commutes(Gate::h(2)));
}

TEST(BlockContextTest, NonUnitaryNeverCommutes)
{
    BlockContext ctx;
    ctx.absorb(Gate::cx(0, 1));
    EXPECT_FALSE(ctx.commutes(Gate::measure(2, 0)));
    EXPECT_FALSE(ctx.commutes(Gate::x(2).conditioned_on(0)));
}

/**
 * Property: a gate provably commuting with a BlockContext commutes with
 * every gate absorbed into it (checked via the exact oracle on a sample).
 */
TEST(BlockContextTest, ContextCommuteImpliesPairwiseCommute)
{
    const auto zoo = gate_zoo();
    std::vector<Gate> block = {Gate::cx(0, 1), Gate::rz(0, 0.2),
                               Gate::cx(0, 2)};
    BlockContext ctx;
    for (const Gate& g : block)
        ctx.absorb(g);
    for (const Gate& g : zoo) {
        if (!ctx.commutes(g))
            continue;
        for (const Gate& member : block)
            EXPECT_TRUE(gates_commute_exact(g, member))
                << g.to_string() << " vs " << member.to_string();
    }
}

} // namespace
