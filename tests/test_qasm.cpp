/**
 * @file
 * Tests for the OpenQASM 2.0 subset emitter/parser: round-trip fidelity
 * and error handling.
 */
#include <gtest/gtest.h>

#include "qir/qasm.hpp"
#include "qir/unitary.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm::qir;
using autocomm::support::UserError;

TEST(Qasm, EmitsHeaderAndRegisters)
{
    Circuit c(3, 2);
    const std::string q = to_qasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("creg c[2];"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesGates)
{
    Circuit c(4, 2);
    c.h(0)
        .x(1)
        .sdg(2)
        .rx(0, 0.25)
        .u3(1, 0.1, 0.2, 0.3)
        .cx(0, 1)
        .cz(1, 2)
        .cp(2, 3, 0.5)
        .crz(0, 3, -0.75)
        .rzz(1, 3, 1.5)
        .swap(0, 2)
        .ccx(0, 1, 2)
        .measure(3, 0)
        .reset(3);
    const Circuit r = from_qasm(to_qasm(c));
    ASSERT_EQ(r.size(), c.size());
    EXPECT_EQ(r.num_qubits(), c.num_qubits());
    EXPECT_EQ(r.num_cbits(), c.num_cbits());
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(r[i], c[i]) << "gate " << i << ": " << c[i].to_string();
}

TEST(Qasm, RoundTripPreservesConditions)
{
    Circuit c(2, 1);
    c.measure(0, 0).add(Gate::x(1).conditioned_on(0, 1));
    const Circuit r = from_qasm(to_qasm(c));
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[1].cond_bit, 0);
    EXPECT_EQ(r[1].cond_value, 1);
}

TEST(Qasm, RoundTripPreservesUnitary)
{
    Circuit c(3);
    c.h(0).cp(0, 1, 0.37).rzz(1, 2, -0.8).swap(0, 2).t(1);
    const Circuit r = from_qasm(to_qasm(c));
    EXPECT_TRUE(circuits_equivalent(c, r));
}

TEST(Qasm, ParsesWhitespaceAndComments)
{
    const char* text = R"(
OPENQASM 2.0;
// a comment line
qreg q[2];
h q[0];   // trailing comment
cx q[0], q[1];
)";
    const Circuit c = from_qasm(text);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind, GateKind::H);
    EXPECT_EQ(c[1].kind, GateKind::CX);
}

TEST(Qasm, ParsesBarrier)
{
    const Circuit c = from_qasm("qreg q[1];\nbarrier q;\nh q[0];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind, GateKind::Barrier);
}

TEST(Qasm, RejectsUnknownGate)
{
    EXPECT_THROW(from_qasm("qreg q[1];\nfoo q[0];\n"), UserError);
}

TEST(Qasm, RejectsMalformedMeasure)
{
    EXPECT_THROW(from_qasm("qreg q[1];\ncreg c[1];\nmeasure q[0] c[0];\n"),
                 UserError);
}

TEST(Qasm, ParsesNegativeAndScientificParams)
{
    const Circuit c =
        from_qasm("qreg q[1];\nrz(-1.5e-3) q[0];\np(2.5) q[0];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c[0].params[0], -1.5e-3, 1e-15);
    EXPECT_NEAR(c[1].params[0], 2.5, 1e-15);
}

} // namespace
