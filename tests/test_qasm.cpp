/**
 * @file
 * Tests for the OpenQASM 2.0 subset emitter/parser: round-trip fidelity
 * and error handling.
 */
#include <gtest/gtest.h>

#include "qir/qasm.hpp"
#include "qir/unitary.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm::qir;
using autocomm::support::UserError;

TEST(Qasm, EmitsHeaderAndRegisters)
{
    Circuit c(3, 2);
    const std::string q = to_qasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("creg c[2];"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesGates)
{
    Circuit c(4, 2);
    c.h(0)
        .x(1)
        .sdg(2)
        .rx(0, 0.25)
        .u3(1, 0.1, 0.2, 0.3)
        .cx(0, 1)
        .cz(1, 2)
        .cp(2, 3, 0.5)
        .crz(0, 3, -0.75)
        .rzz(1, 3, 1.5)
        .swap(0, 2)
        .ccx(0, 1, 2)
        .measure(3, 0)
        .reset(3);
    const Circuit r = from_qasm(to_qasm(c));
    ASSERT_EQ(r.size(), c.size());
    EXPECT_EQ(r.num_qubits(), c.num_qubits());
    EXPECT_EQ(r.num_cbits(), c.num_cbits());
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(r[i], c[i]) << "gate " << i << ": " << c[i].to_string();
}

TEST(Qasm, RoundTripPreservesConditions)
{
    Circuit c(2, 1);
    c.measure(0, 0).add(Gate::x(1).conditioned_on(0, 1));
    const Circuit r = from_qasm(to_qasm(c));
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[1].cond_bit, 0);
    EXPECT_EQ(r[1].cond_value, 1);
}

TEST(Qasm, RoundTripPreservesUnitary)
{
    Circuit c(3);
    c.h(0).cp(0, 1, 0.37).rzz(1, 2, -0.8).swap(0, 2).t(1);
    const Circuit r = from_qasm(to_qasm(c));
    EXPECT_TRUE(circuits_equivalent(c, r));
}

TEST(Qasm, ParsesWhitespaceAndComments)
{
    const char* text = R"(
OPENQASM 2.0;
// a comment line
qreg q[2];
h q[0];   // trailing comment
cx q[0], q[1];
)";
    const Circuit c = from_qasm(text);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind, GateKind::H);
    EXPECT_EQ(c[1].kind, GateKind::CX);
}

TEST(Qasm, ParsesBarrier)
{
    const Circuit c = from_qasm("qreg q[1];\nbarrier q;\nh q[0];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind, GateKind::Barrier);
}

TEST(Qasm, RejectsUnknownGate)
{
    EXPECT_THROW(from_qasm("qreg q[1];\nfoo q[0];\n"), UserError);
}

TEST(Qasm, RejectsMalformedMeasure)
{
    EXPECT_THROW(from_qasm("qreg q[1];\ncreg c[1];\nmeasure q[0] c[0];\n"),
                 UserError);
}

/** The parser's message for @p text, or "" when it does not throw. */
std::string
error_of(const char* text)
{
    try {
        from_qasm(text);
    } catch (const UserError& e) {
        return e.what();
    }
    return {};
}

TEST(Qasm, RejectsDuplicateRegister)
{
    const std::string msg = error_of("qreg q[2];\nqreg q[3];\n");
    EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
    EXPECT_EQ(msg.rfind("qasm:2:", 0), 0u) << msg;
}

TEST(Qasm, RejectsZeroSizeRegister)
{
    EXPECT_NE(error_of("qreg q[0];\n").find("positive"),
              std::string::npos);
}

TEST(Qasm, RejectsOutOfRangeQubitIndex)
{
    const std::string msg = error_of("qreg q[2];\nh q[2];\n");
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
    EXPECT_EQ(msg.rfind("qasm:2:", 0), 0u) << msg;
    EXPECT_FALSE(error_of("qreg q[2];\nh q[-1];\n").empty());
}

TEST(Qasm, RejectsUnknownRegisterName)
{
    EXPECT_NE(error_of("qreg q[1];\nh r[0];\n").find("unknown"),
              std::string::npos);
}

TEST(Qasm, RejectsTruncatedCondition)
{
    EXPECT_FALSE(
        error_of("qreg q[1];\ncreg c[1];\nif (c[0]==1 x q[0];\n").empty());
    EXPECT_FALSE(error_of("qreg q[1];\ncreg c[1];\nif (c[0]\n").empty());
}

TEST(Qasm, RejectsTrailingGarbageAfterGate)
{
    EXPECT_NE(error_of("qreg q[1];\nh q[0] junk;\n").find("trailing"),
              std::string::npos);
}

TEST(Qasm, RejectsMissingParameterList)
{
    EXPECT_NE(error_of("qreg q[1];\nrx q[0];\n").find("expected '('"),
              std::string::npos);
}

TEST(Qasm, RejectsRepeatedOperand)
{
    EXPECT_NE(
        error_of("qreg q[2];\ncx q[0], q[0];\n").find("distinct"),
        std::string::npos);
}

TEST(Qasm, ErrorsNameTheOffendingSourceLine)
{
    // Comments and blank lines still count toward the line number.
    const std::string msg = error_of("OPENQASM 2.0;\n"
                                     "// header comment\n"
                                     "qreg q[2];\n"
                                     "\n"
                                     "bogus q[0];\n");
    EXPECT_EQ(msg.rfind("qasm:5:", 0), 0u) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
}

TEST(Qasm, ParsesNegativeAndScientificParams)
{
    const Circuit c =
        from_qasm("qreg q[1];\nrz(-1.5e-3) q[0];\np(2.5) q[0];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c[0].params[0], -1.5e-3, 1e-15);
    EXPECT_NEAR(c[1].params[0], 2.5, 1e-15);
}

} // namespace
