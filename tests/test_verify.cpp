/**
 * @file
 * Tests for the verification subsystem (src/verify): the seeded random
 * circuit generator's structural properties, and the independent
 * invariant checkers as oracles — hand-built corrupt schedule results
 * must each be rejected with their specific rule, mutations of a real
 * compile result must be caught, and the fuzzer-found scheduler
 * deadlocks must stay fixed.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "autocomm/pipeline.hpp"
#include "baseline/ferrari.hpp"
#include "baseline/gptp.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "qir/qasm.hpp"
#include "support/log.hpp"
#include "verify/check.hpp"
#include "verify/random_circuit.hpp"

namespace {

using namespace autocomm;
using autocomm::support::UserError;
using verify::CheckReport;
using verify::RandomCircuitOptions;

bool
has_rule(const CheckReport& rep, const std::string& rule)
{
    for (const verify::Violation& v : rep.violations)
        if (v.rule == rule)
            return true;
    return false;
}

// ---------------------------------------------- random circuit generator

TEST(RandomCircuit, QasmRoundTripIsAFixedPoint)
{
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        RandomCircuitOptions opts;
        opts.seed = seed;
        const qir::Circuit c = verify::random_circuit(opts);
        const std::string qasm = qir::to_qasm(c);
        EXPECT_EQ(qir::to_qasm(qir::from_qasm(qasm)), qasm)
            << "seed " << seed;
    }
}

TEST(RandomCircuit, RespectsQubitAndDepthBounds)
{
    RandomCircuitOptions opts;
    opts.num_qubits = 11;
    opts.depth = 9;
    opts.seed = 7;
    const qir::Circuit c = verify::random_circuit(opts);
    EXPECT_EQ(c.num_qubits(), 11);
    EXPECT_FALSE(c.empty());
    EXPECT_LE(c.depth(), 9u);
    for (std::size_t i = 0; i < c.size(); ++i)
        for (int k = 0; k < c[i].num_qubits; ++k) {
            EXPECT_GE(c[i].qs[static_cast<std::size_t>(k)], 0);
            EXPECT_LT(c[i].qs[static_cast<std::size_t>(k)], 11);
        }
}

TEST(RandomCircuit, SeedIsDeterministicAndDistinguishing)
{
    RandomCircuitOptions opts;
    opts.seed = 42;
    const std::string a = qir::to_qasm(verify::random_circuit(opts));
    const std::string b = qir::to_qasm(verify::random_circuit(opts));
    EXPECT_EQ(a, b);
    opts.seed = 43;
    EXPECT_NE(a, qir::to_qasm(verify::random_circuit(opts)));
}

TEST(RandomCircuit, GateMixKnobsAreRespected)
{
    RandomCircuitOptions opts;
    opts.two_qubit_fraction = 0.0;
    opts.seed = 3;
    const qir::Circuit only1q = verify::random_circuit(opts);
    for (std::size_t i = 0; i < only1q.size(); ++i)
        EXPECT_EQ(only1q[i].num_qubits, 1);

    opts.two_qubit_fraction = 1.0;
    opts.gate_density = 1.0;
    opts.allow_ccx = true;
    opts.depth = 40;
    const qir::Circuit wide = verify::random_circuit(opts);
    bool saw2q = false, saw3q = false;
    for (std::size_t i = 0; i < wide.size(); ++i) {
        saw2q |= wide[i].num_qubits == 2;
        saw3q |= wide[i].num_qubits == 3;
    }
    EXPECT_TRUE(saw2q);
    EXPECT_TRUE(saw3q);
}

TEST(RandomCircuit, RejectsInvalidOptions)
{
    RandomCircuitOptions opts;
    opts.num_qubits = 1;
    EXPECT_THROW(verify::random_circuit(opts), UserError);
    opts.num_qubits = 4;
    opts.depth = 0;
    EXPECT_THROW(verify::random_circuit(opts), UserError);
    opts.depth = 5;
    opts.two_qubit_fraction = 1.5;
    EXPECT_THROW(verify::random_circuit(opts), UserError);
}

// -------------------------------------------- check_schedule as an oracle

using LinkMap = std::map<std::pair<NodeId, NodeId>, std::size_t>;

/** A self-consistent hand-built result: @p n pairs between nodes 0 and 2
 * of a 5-node ring (unique shortest route 0-1-2 through the swap router
 * at node 1). */
pass::ScheduleResult
ring_pairs(std::size_t n, double makespan)
{
    pass::ScheduleResult r;
    r.makespan = makespan;
    r.epr_pairs = n;
    r.hops_total = 2 * n;
    r.epr_raw_pairs = 2 * n;
    r.ledger = comm::EprLedger::restore(
        LinkMap{{{0, 2}, n}}, LinkMap{{{0, 1}, n}, {{1, 2}, n}}, n, 2 * n,
        0.0);
    return r;
}

TEST(CheckSchedule, AcceptsAConsistentHandBuiltResult)
{
    const hw::Machine m =
        hw::Machine::homogeneous(5, 4, hw::Topology::Ring);
    const double dur = m.epr_latency(0, 2);
    const CheckReport rep = verify::check_schedule(ring_pairs(1, dur), m);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(CheckSchedule, OversubscribedRouterSlotIsCaught)
{
    const hw::Machine m =
        hw::Machine::homogeneous(5, 4, hw::Topology::Ring);
    // Three pairs through router node 1 occupy 6 slot-durations there,
    // but a makespan of one preparation offers only 2 slots x 1 duration.
    const double dur = m.epr_latency(0, 2);
    const CheckReport rep = verify::check_schedule(ring_pairs(3, dur), m);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_rule(rep, "slot-capacity")) << rep.to_string();
}

TEST(CheckSchedule, LeakedLedgerPairIsCaught)
{
    const hw::Machine m = hw::Machine::homogeneous(4, 4);
    pass::ScheduleResult r;
    r.makespan = 10.0;
    r.epr_pairs = 2; // counter says 2, ledger says 1: one pair leaked
    r.hops_total = 1;
    r.epr_raw_pairs = 1;
    r.ledger = comm::EprLedger::restore(LinkMap{{{0, 1}, 1}},
                                        LinkMap{{{0, 1}, 1}}, 1, 1, 0.0);
    const CheckReport rep = verify::check_schedule(r, m);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_rule(rep, "ledger-total")) << rep.to_string();
}

TEST(CheckSchedule, OrphanRawSegmentIsCaught)
{
    const hw::Machine m = hw::Machine::homogeneous(4, 4);
    pass::ScheduleResult r;
    r.makespan = 10.0;
    r.epr_pairs = 1;
    r.hops_total = 1;
    r.epr_raw_pairs = 2;
    // A raw pair on (2, 3) that no consumed pair's route explains.
    r.ledger = comm::EprLedger::restore(
        LinkMap{{{0, 1}, 1}}, LinkMap{{{0, 1}, 1}, {{2, 3}, 1}}, 1, 2,
        0.0);
    const CheckReport rep = verify::check_schedule(r, m);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_rule(rep, "raw-segment-orphan")) << rep.to_string();
    EXPECT_TRUE(has_rule(rep, "raw-conservation")) << rep.to_string();
}

TEST(CheckSchedule, FidelityAboveOneIsCaught)
{
    const hw::Machine m = hw::Machine::homogeneous(4, 4);
    pass::ScheduleResult r;
    r.makespan = 10.0;
    r.epr_pairs = 1;
    r.hops_total = 1;
    r.epr_raw_pairs = 1;
    // log fidelity +0.25: a "pair" above fidelity 1.
    r.ledger = comm::EprLedger::restore(LinkMap{{{0, 1}, 1}},
                                        LinkMap{{{0, 1}, 1}}, 1, 1, 0.25);
    const CheckReport rep = verify::check_schedule(r, m);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_rule(rep, "fidelity-log-sign")) << rep.to_string();
    EXPECT_TRUE(has_rule(rep, "fidelity-range")) << rep.to_string();
}

TEST(CheckSchedule, TeleportBudgetIsCaught)
{
    const hw::Machine m = hw::Machine::homogeneous(4, 4);
    pass::ScheduleResult r; // empty result, but 1 claimed teleport
    r.teleports = 1;
    const CheckReport rep = verify::check_schedule(r, m);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_rule(rep, "teleport-budget")) << rep.to_string();
}

// ------------------------------------- mutations of a real compile result

struct Compiled
{
    qir::Circuit c;
    hw::QubitMapping map;
    hw::Machine m;
    pass::CompileResult ac;
};

Compiled
compile_random(std::uint64_t seed, hw::Topology topo)
{
    RandomCircuitOptions opts;
    opts.seed = seed;
    Compiled out;
    out.c = qir::decompose(verify::random_circuit(opts));
    out.m = hw::Machine::homogeneous(4, 2, topo);
    out.map = partition::oee_map(out.c, hw::Machine::homogeneous(4, 2));
    out.ac = pass::compile(out.c, out.map, out.m);
    return out;
}

TEST(CheckSchedule, RealCompilePassesAndMutationsAreCaught)
{
    const Compiled r = compile_random(1, hw::Topology::Ring);
    ASSERT_TRUE(verify::check_schedule(r.ac.schedule, r.m).ok())
        << verify::check_schedule(r.ac.schedule, r.m).to_string();
    ASSERT_GT(r.ac.schedule.epr_pairs, 0u);

    pass::ScheduleResult mut = r.ac.schedule;
    mut.makespan *= 0.01; // a latency the consumed pairs cannot fit in
    EXPECT_FALSE(verify::check_schedule(mut, r.m).ok());

    mut = r.ac.schedule;
    mut.epr_pairs += 1;
    EXPECT_TRUE(has_rule(verify::check_schedule(mut, r.m),
                         "ledger-total"));

    mut = r.ac.schedule;
    mut.hops_total += 1;
    EXPECT_TRUE(has_rule(verify::check_schedule(mut, r.m), "hops-total"));

    mut = r.ac.schedule;
    mut.epr_raw_pairs += 1;
    EXPECT_TRUE(has_rule(verify::check_schedule(mut, r.m),
                         "ledger-raw-total"));
}

TEST(CheckMetrics, RealCompilePassesAndMutationsAreCaught)
{
    const Compiled r = compile_random(2, hw::Topology::AllToAll);
    ASSERT_TRUE(verify::check_metrics(r.ac.metrics, r.c, r.map).ok());

    pass::Metrics mut = r.ac.metrics;
    mut.remote_gates += 1;
    const CheckReport rep = verify::check_metrics(mut, r.c, r.map);
    EXPECT_TRUE(has_rule(rep, "remote-count")) << rep.to_string();

    pass::Metrics mut2 = r.ac.metrics;
    ASSERT_FALSE(mut2.per_comm_cx.empty());
    mut2.per_comm_cx[0] = 0.5;
    EXPECT_TRUE(has_rule(verify::check_metrics(mut2, r.c, r.map),
                         "per-comm-floor"));
}

TEST(CheckCross, AggregationRegressionIsCaught)
{
    const Compiled r = compile_random(3, hw::Topology::AllToAll);
    const pass::CompileResult fe =
        baseline::compile_ferrari(r.c, r.map, r.m);
    ASSERT_TRUE(verify::check_cross(r.ac, fe).ok())
        << verify::check_cross(r.ac, fe).to_string();

    pass::CompileResult worse = r.ac;
    worse.metrics.total_comms = fe.metrics.total_comms + 1;
    EXPECT_TRUE(has_rule(verify::check_cross(worse, fe), "cross-comms"));
}

TEST(CheckGptp, StructuralViolationsAreCaught)
{
    baseline::GptpResult gp;
    gp.remote_swaps = 1;
    gp.total_comms = 3; // a teleported SWAP consumes exactly 2
    gp.makespan = 1.0;
    EXPECT_TRUE(has_rule(verify::check_gptp(gp), "gptp-pairs-per-swap"));
    gp.total_comms = 2;
    gp.makespan = -1.0;
    EXPECT_TRUE(has_rule(verify::check_gptp(gp), "gptp-makespan-range"));
}

// --------------------------------------- fuzzer-found regressions pinned

/** TP-fusion chains used to park comm slots at unresolved (infinite)
 * times; multi-hop routes crossing a parked node then poisoned the whole
 * timeline. Eviction + detour routing keep these finite now. */
TEST(ScheduleConflicts, FusedChainsOnMultiHopTopologiesStayFinite)
{
    for (std::uint64_t seed : {0ull, 86ull}) {
        RandomCircuitOptions opts;
        opts.num_qubits = 16;
        opts.depth = 24;
        opts.seed = seed;
        const qir::Circuit c = qir::decompose(verify::random_circuit(opts));
        const hw::QubitMapping map =
            partition::oee_map(c, hw::Machine::homogeneous(4, 4));
        for (hw::Topology topo :
             {hw::Topology::Ring, hw::Topology::Grid}) {
            const hw::Machine m = hw::Machine::homogeneous(4, 4, topo);
            const pass::CompileResult ac = pass::compile(c, map, m);
            EXPECT_TRUE(std::isfinite(ac.schedule.makespan))
                << "seed " << seed << " topo "
                << hw::topology_name(topo);
            const CheckReport rep = verify::check_schedule(ac.schedule, m);
            EXPECT_TRUE(rep.ok())
                << "seed " << seed << ": " << rep.to_string();
        }
    }
}

/** check_schedule used to relax EPR conservation to a hops floor
 * whenever a pair detoured; the ledger now records every pair's actual
 * delivery route, so conservation is exact for detoured schedules too —
 * a single leaked raw pair must be rejected even with detours > 0. */
TEST(CheckSchedule, DetouredResultGetsExactConservation)
{
    // Seed 86 on a 4-node grid detours deterministically (the fused-chain
    // scenario pinned in FusedChainsOnMultiHopTopologiesStayFinite).
    RandomCircuitOptions opts;
    opts.num_qubits = 16;
    opts.depth = 24;
    opts.seed = 86;
    const qir::Circuit c = qir::decompose(verify::random_circuit(opts));
    const hw::QubitMapping map =
        partition::oee_map(c, hw::Machine::homogeneous(4, 4));
    const hw::Machine m =
        hw::Machine::homogeneous(4, 4, hw::Topology::Grid);
    const pass::CompileResult ac = pass::compile(c, map, m);
    ASSERT_GT(ac.schedule.detours, 0u);
    ASSERT_TRUE(ac.schedule.ledger.has_routes());
    ASSERT_TRUE(verify::check_schedule(ac.schedule, m).ok())
        << verify::check_schedule(ac.schedule, m).to_string();

    // Leak one raw pair on a physical link the schedule actually used:
    // totals still reconcile against the bumped counter, but the exact
    // per-segment re-derivation from the recorded routes catches it.
    pass::ScheduleResult mut = ac.schedule;
    const auto seg = mut.ledger.raw_per_link().begin()->first;
    mut.ledger.consume_raw(seg.first, seg.second, 1);
    mut.epr_raw_pairs += 1;
    const CheckReport leaked = verify::check_schedule(mut, m);
    EXPECT_TRUE(has_rule(leaked, "raw-segment")) << leaked.to_string();
    EXPECT_TRUE(has_rule(leaked, "raw-conservation"))
        << leaked.to_string();

    // A miscounted detour counter is caught against the recorded routes.
    mut = ac.schedule;
    mut.detours += 1;
    EXPECT_TRUE(has_rule(verify::check_schedule(mut, m), "detour-count"));

    // A detoured result whose ledger lost its routes (e.g. hand-rebuilt
    // via restore()) cannot be verified exactly; that is a violation now,
    // not a silent fallback to the old hops floor.
    mut = ac.schedule;
    mut.ledger = comm::EprLedger::restore(
        ac.schedule.ledger.per_link(), ac.schedule.ledger.raw_per_link(),
        ac.schedule.ledger.total(), ac.schedule.ledger.raw_total(),
        ac.schedule.ledger.log_fidelity());
    EXPECT_TRUE(
        has_rule(verify::check_schedule(mut, m), "route-coverage"));
}

TEST(CheckSchedule, ShapedWeakLinkMachinePassesAllCheckers)
{
    // The bench_fuzz shape/override axes pinned on one deterministic
    // case: heterogeneous node capacities plus one degraded,
    // bandwidth-capped fiber. The checkers must cost the bottleneck
    // bandwidth and the re-routed paths exactly — no uniform-link
    // shortcuts.
    RandomCircuitOptions opts;
    opts.num_qubits = 16;
    opts.depth = 24;
    opts.seed = 86;
    const qir::Circuit c = qir::decompose(verify::random_circuit(opts));
    const std::vector<int> caps = {4, 4, 12, 12};
    const hw::QubitMapping map =
        partition::oee_map(c, hw::Machine::from_capacities(caps));

    hw::Machine m =
        hw::Machine::from_capacities(caps, hw::Topology::Grid);
    m.link.fidelity = 0.95;
    m.purify.target_fidelity = 0.99;
    m.link.set_link_fidelity(0, 1, 0.93);
    m.link.set_link_bandwidth(0, 1, 1);
    m.build_routing();
    m.validate_noise();

    const pass::CompileResult ac = pass::compile(c, map, m);
    const CheckReport sched = verify::check_schedule(ac.schedule, m);
    EXPECT_TRUE(sched.ok()) << sched.to_string();
    const CheckReport metrics = verify::check_metrics(ac.metrics, c, map);
    EXPECT_TRUE(metrics.ok()) << metrics.to_string();

    const pass::CompileResult fe = baseline::compile_ferrari(c, map, m);
    const CheckReport fsched = verify::check_schedule(fe.schedule, m);
    EXPECT_TRUE(fsched.ok()) << fsched.to_string();
    const CheckReport cross = verify::check_cross(ac, fe);
    EXPECT_TRUE(cross.ok()) << cross.to_string();
}

/** Same-round merges could absorb a block as a nested child and then
 * merge-and-empty it through a stale group list, leaving a dangling
 * child index (heap overflow in the final remap). */
TEST(ScheduleConflicts, DenseNestedMergeDoesNotCorruptBlockLinks)
{
    RandomCircuitOptions opts;
    opts.num_qubits = 24;
    opts.depth = 32;
    opts.allow_ccx = true;
    opts.seed = 315;
    const qir::Circuit c = qir::decompose(verify::random_circuit(opts));
    const hw::QubitMapping map =
        partition::oee_map(c, hw::Machine::homogeneous(6, 4));
    for (hw::Topology topo :
         {hw::Topology::AllToAll, hw::Topology::Grid}) {
        const hw::Machine m = hw::Machine::homogeneous(6, 4, topo);
        const pass::CompileResult ac = pass::compile(c, map, m);
        const CheckReport rep = verify::check_schedule(ac.schedule, m);
        EXPECT_TRUE(rep.ok()) << rep.to_string();
        EXPECT_TRUE(verify::check_metrics(ac.metrics, c, map).ok());
    }
}

} // namespace
