/**
 * @file
 * Cross-family property suite: compiler-wide invariants checked over a
 * parameterized sweep of (benchmark family, size, node count, mapping).
 * These are the contracts any AutoComm-compatible pass pipeline must
 * satisfy regardless of workload.
 */
#include <gtest/gtest.h>

#include <set>

#include "autocomm/pipeline.hpp"
#include "baseline/ferrari.hpp"
#include "baseline/gptp.hpp"
#include "circuits/library.hpp"
#include "partition/mappers.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm;
using namespace autocomm::pass;
using qir::Circuit;

struct Case
{
    circuits::Family family;
    int qubits;
    int nodes;
    const char* mapping;
};

std::string
case_name(const ::testing::TestParamInfo<Case>& info)
{
    return std::string(circuits::family_name(info.param.family)) + "_" +
           std::to_string(info.param.qubits) + "q_" +
           std::to_string(info.param.nodes) + "n_" + info.param.mapping;
}

class CompileProperties : public ::testing::TestWithParam<Case>
{
  protected:
    void
    SetUp() override
    {
        const Case& p = GetParam();
        circuit_ = qir::decompose(
            circuits::make_benchmark({p.family, p.qubits, p.nodes}));
        machine_.num_nodes = p.nodes;
        machine_.qubits_per_node = (p.qubits + p.nodes - 1) / p.nodes;
        if (std::string(p.mapping) == "oee")
            mapping_ = partition::oee_map(circuit_, p.nodes);
        else if (std::string(p.mapping) == "rr")
            mapping_ = partition::round_robin_map(p.qubits, p.nodes);
        else
            mapping_ = partition::contiguous_map(p.qubits, p.nodes);
        result_ = compile(circuit_, mapping_, machine_);
    }

    Circuit circuit_;
    hw::Machine machine_;
    hw::QubitMapping mapping_;
    CompileResult result_;
};

TEST_P(CompileProperties, EveryRemoteGateInExactlyOneBlock)
{
    std::set<std::size_t> seen;
    std::size_t members = 0;
    for (const CommBlock& b : result_.blocks) {
        for (std::size_t i : b.members) {
            EXPECT_TRUE(mapping_.is_remote(circuit_[i]));
            EXPECT_TRUE(seen.insert(i).second);
            ++members;
        }
        for (std::size_t i : b.absorbed)
            EXPECT_TRUE(seen.insert(i).second);
    }
    EXPECT_EQ(members, mapping_.count_remote(circuit_));
}

TEST_P(CompileProperties, CommsNeverExceedRemoteGatesPlusTpOverhead)
{
    // Worst case is one comm per remote gate (sparse); TP adds at most
    // one extra comm per block.
    EXPECT_LE(result_.metrics.total_comms,
              result_.metrics.remote_gates + result_.metrics.num_blocks);
    EXPECT_GE(result_.metrics.total_comms, result_.metrics.num_blocks ? 1u
                                                                      : 0u);
}

TEST_P(CompileProperties, MetricsAreInternallyConsistent)
{
    const Metrics& m = result_.metrics;
    EXPECT_EQ(m.total_comms, m.tp_comms + m.cat_comms);
    EXPECT_EQ(m.per_comm_cx.size(), m.total_comms);
    double carried = 0;
    for (double v : m.per_comm_cx) {
        EXPECT_GT(v, 0.0);
        carried += v;
    }
    // Each remote gate is carried exactly once (TP splits it across two
    // half-weighted communications).
    EXPECT_NEAR(carried, static_cast<double>(m.remote_gates), 1e-6);
    EXPECT_GE(m.peak_rem_cx, m.mean_rem_cx());
}

TEST_P(CompileProperties, ReorderedCircuitIsAPermutationOfTheInput)
{
    ASSERT_EQ(result_.reordered.size(), circuit_.size());
    // Same multiset of gates (cheap proxy for permutation): counts per
    // kind and per qubit-sum must agree.
    std::map<qir::GateKind, std::size_t> a, b;
    long qsum_a = 0, qsum_b = 0;
    for (const auto& g : circuit_) {
        ++a[g.kind];
        for (int k = 0; k < g.num_qubits; ++k)
            qsum_a += g.qs[static_cast<std::size_t>(k)];
    }
    for (const auto& g : result_.reordered) {
        ++b[g.kind];
        for (int k = 0; k < g.num_qubits; ++k)
            qsum_b += g.qs[static_cast<std::size_t>(k)];
    }
    EXPECT_EQ(a, b);
    EXPECT_EQ(qsum_a, qsum_b);
}

TEST_P(CompileProperties, BlockTreeIsWellFormed)
{
    const auto& blocks = result_.blocks;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const CommBlock& blk = blocks[b];
        EXPECT_FALSE(blk.members.empty());
        if (blk.parent != -1) {
            const auto p = static_cast<std::size_t>(blk.parent);
            ASSERT_LT(p, blocks.size());
            // Parent lists this block as a child, and windows nest.
            EXPECT_NE(std::find(blocks[p].children.begin(),
                                blocks[p].children.end(), b),
                      blocks[p].children.end());
            EXPECT_GT(blk.window_begin(), blocks[p].window_begin());
            EXPECT_LT(blk.window_end(), blocks[p].window_end());
        }
        for (std::size_t ch : blocks[b].children)
            EXPECT_EQ(blocks[ch].parent, static_cast<long>(b));
    }
}

TEST_P(CompileProperties, ScheduleIsFiniteAndResourceSane)
{
    EXPECT_GE(result_.schedule.makespan, 0.0);
    EXPECT_LT(result_.schedule.makespan, 1e12);
    // Fused links only ever reduce EPR consumption.
    EXPECT_LE(result_.schedule.epr_pairs +
                  result_.schedule.fused_links,
              result_.metrics.total_comms +
                  result_.schedule.fused_links +
                  result_.metrics.num_blocks);
}

TEST_P(CompileProperties, AutoCommNeverLosesToSparseBaseline)
{
    const auto base =
        baseline::compile_ferrari(circuit_, mapping_, machine_);
    EXPECT_LE(result_.metrics.total_comms, base.metrics.total_comms);
    EXPECT_EQ(base.metrics.total_comms, mapping_.count_remote(circuit_));
}

TEST_P(CompileProperties, CompilationIsDeterministic)
{
    const auto again = compile(circuit_, mapping_, machine_);
    EXPECT_EQ(again.metrics.total_comms, result_.metrics.total_comms);
    EXPECT_EQ(again.blocks.size(), result_.blocks.size());
    EXPECT_DOUBLE_EQ(again.schedule.makespan, result_.schedule.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompileProperties,
    ::testing::Values(
        Case{circuits::Family::MCTR, 40, 4, "oee"},
        Case{circuits::Family::MCTR, 40, 8, "contig"},
        Case{circuits::Family::RCA, 40, 4, "oee"},
        Case{circuits::Family::RCA, 40, 4, "rr"},
        Case{circuits::Family::QFT, 24, 4, "oee"},
        Case{circuits::Family::QFT, 24, 6, "contig"},
        Case{circuits::Family::BV, 33, 4, "oee"},
        Case{circuits::Family::BV, 33, 8, "rr"},
        Case{circuits::Family::QAOA, 24, 4, "oee"},
        Case{circuits::Family::QAOA, 24, 6, "rr"},
        Case{circuits::Family::UCCSD, 8, 4, "oee"},
        Case{circuits::Family::UCCSD, 8, 2, "contig"}),
    case_name);

} // namespace
