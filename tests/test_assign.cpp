/**
 * @file
 * Tests for the communication assignment pass (paper §4.3): pattern
 * analysis, Cat-vs-TP selection, segment costing, and the Cat-only
 * ablation mode.
 */
#include <gtest/gtest.h>

#include "support/log.hpp"

#include "autocomm/aggregate.hpp"
#include "autocomm/assign.hpp"
#include "circuits/library.hpp"
#include "circuits/qft.hpp"
#include "qir/decompose.hpp"

namespace {

using namespace autocomm;
using namespace autocomm::pass;
using qir::Circuit;

std::vector<CommBlock>
compile_blocks(const Circuit& c, const hw::QubitMapping& map,
               const AssignOptions& opts = {})
{
    auto blocks = aggregate(c, map);
    assign_schemes(c, blocks, opts);
    return blocks;
}

TEST(Assign, SingleRemoteGateUsesCatWithOneEpr)
{
    Circuit c(4);
    c.cx(0, 2);
    const auto map = hw::QubitMapping::contiguous(4, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].pattern, Pattern::Single);
    EXPECT_EQ(blocks[0].scheme, Scheme::Cat);
    EXPECT_EQ(blocks[0].num_comms, 1);
}

TEST(Assign, UniControlBurstIsOneCatInvocation)
{
    // Fig. 9(a): hub q0 controls CX to several qubits of node 1.
    Circuit c(6);
    c.cx(0, 3).cx(0, 4).cx(0, 5);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].pattern, Pattern::UniControl);
    EXPECT_EQ(blocks[0].scheme, Scheme::Cat);
    EXPECT_EQ(blocks[0].num_comms, 1);
}

TEST(Assign, UniTargetBurstIsOneCatInvocationViaHadamard)
{
    // Fig. 9(c) -> Fig. 10(a): hub q0 is always the target.
    Circuit c(6);
    c.cx(3, 0).cx(4, 0).cx(5, 0);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].pattern, Pattern::UniTarget);
    EXPECT_EQ(blocks[0].scheme, Scheme::Cat);
    EXPECT_EQ(blocks[0].num_comms, 1);
}

TEST(Assign, BidirectionalBurstUsesTp)
{
    // Fig. 9(b): hub on both sides.
    Circuit c(6);
    c.cx(0, 3).cx(4, 0).cx(0, 5);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].pattern, Pattern::Bidirectional);
    EXPECT_EQ(blocks[0].scheme, Scheme::TP);
    EXPECT_EQ(blocks[0].num_comms, 2);
}

TEST(Assign, BlockingHub1qGateForcesTp)
{
    // The paper's block-3 example (Fig. 8): a Tdg on the hub between two
    // same-direction remote gates. Cat would need 2 EPR, TP needs 2:
    // tie goes to TP.
    Circuit c(6);
    c.cx(0, 3);
    c.h(0); // non-diagonal, non-removable on a control-pattern hub
    c.cx(0, 4);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    ASSERT_EQ(blocks[0].members.size(), 2u);
    EXPECT_EQ(blocks[0].scheme, Scheme::TP);
    EXPECT_EQ(blocks[0].num_comms, 2);
}

TEST(Assign, DiagonalHubGatesDoNotBlockCat)
{
    // Diagonal gates on a control-pattern hub are removable (they commute
    // out during aggregation), so the burst stays a 1-EPR Cat block.
    Circuit c(6);
    c.cx(0, 3).t(0).rz(0, 0.4).cx(0, 4);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].scheme, Scheme::Cat);
    EXPECT_EQ(blocks[0].num_comms, 1);
}

TEST(Assign, XGatesDoNotBlockTargetPattern)
{
    // X-family hub gates commute through a target-pattern burst.
    Circuit c(6);
    c.cx(3, 0).x(0).rx(0, 0.3).cx(4, 0);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].pattern, Pattern::UniTarget);
    EXPECT_EQ(blocks[0].scheme, Scheme::Cat);
    EXPECT_EQ(blocks[0].num_comms, 1);
}

TEST(Assign, CatOnlyModeSplitsBidirectionalBlocks)
{
    Circuit c(6);
    c.cx(0, 3).cx(4, 0).cx(0, 5);
    const auto map = hw::QubitMapping::contiguous(6, 2);
    AssignOptions cat_only;
    cat_only.allow_tp = false;
    const auto blocks = compile_blocks(c, map, cat_only);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].scheme, Scheme::Cat);
    EXPECT_EQ(blocks[0].num_comms, 3); // one segment per direction change
    EXPECT_EQ(blocks[0].cat_segments.size(), 3u);
}

TEST(Assign, CatSegmentsSumToMembers)
{
    const Circuit c = qir::decompose(circuits::make_qft(12));
    const auto map = hw::QubitMapping::contiguous(12, 3);
    AssignOptions cat_only;
    cat_only.allow_tp = false;
    auto blocks = aggregate(c, map);
    assign_schemes(c, blocks, cat_only);
    for (const auto& b : blocks) {
        std::size_t total = 0;
        if (b.cat_segments.empty())
            total = b.members.size();
        else
            for (std::size_t s : b.cat_segments)
                total += s;
        EXPECT_EQ(total, b.members.size());
        EXPECT_EQ(static_cast<std::size_t>(b.num_comms),
                  std::max<std::size_t>(b.cat_segments.size(), 1));
    }
}

TEST(Assign, CatInvocationsCountsDirectionRuns)
{
    // control, control, target, target, control -> 3 segments.
    Circuit c(8);
    c.cx(0, 4).cx(0, 5).cx(6, 0).cx(7, 0).cx(0, 4);
    const auto map = hw::QubitMapping::contiguous(8, 2);
    auto blocks = aggregate(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    std::vector<std::size_t> segs;
    EXPECT_EQ(cat_invocations(c, blocks[0], &segs), 3);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0], 2u);
    EXPECT_EQ(segs[1], 2u);
    EXPECT_EQ(segs[2], 1u);
}

TEST(Assign, TpPreferredOverMultiSegmentCat)
{
    // 2 segments == TP's 2 EPR: tie goes to TP (paper default). 3+
    // segments: TP strictly cheaper.
    Circuit c(8);
    c.cx(0, 4).cx(5, 0);
    const auto map = hw::QubitMapping::contiguous(8, 2);
    const auto blocks = compile_blocks(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].scheme, Scheme::TP);
}

TEST(Assign, QftBlocksAreMostlyTp)
{
    // In decomposed QFT the dense receiving-side bursts carry interleaved
    // diagonal gates on target-pattern hubs, forcing TP (this is why the
    // paper's Table 3 shows QFT dominated by TP-Comm).
    const Circuit c = qir::decompose(circuits::make_qft(20));
    const auto map = hw::QubitMapping::contiguous(20, 4);
    auto blocks = aggregate(c, map);
    assign_schemes(c, blocks);
    std::size_t tp = 0, cat = 0;
    for (const auto& b : blocks)
        (b.scheme == Scheme::TP ? tp : cat) += 1;
    EXPECT_GT(tp, 0u);
    EXPECT_GT(tp, cat / 4);
}

TEST(Assign, EmptyBlockRejected)
{
    Circuit c(2);
    std::vector<CommBlock> blocks(1);
    EXPECT_THROW(assign_schemes(c, blocks), support::UserError);
}

} // namespace
