/**
 * @file
 * Tests for gate metadata, factories, matrices, inverses, and axis
 * classification.
 */
#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "qir/circuit.hpp"
#include "qir/gate.hpp"
#include "qir/unitary.hpp"

namespace {

using namespace autocomm::qir;
using autocomm::QubitId;

const std::vector<GateKind> kAllUnitary = {
    GateKind::I,   GateKind::H,   GateKind::X,    GateKind::Y,
    GateKind::Z,   GateKind::S,   GateKind::Sdg,  GateKind::T,
    GateKind::Tdg, GateKind::SX,  GateKind::RX,   GateKind::RY,
    GateKind::RZ,  GateKind::P,   GateKind::U3,   GateKind::CX,
    GateKind::CZ,  GateKind::CP,  GateKind::CRZ,  GateKind::RZZ,
    GateKind::SWAP, GateKind::CCX,
};

Gate
sample_gate(GateKind kind)
{
    Gate g;
    g.kind = kind;
    g.num_qubits = static_cast<std::uint8_t>(gate_arity(kind));
    for (int i = 0; i < g.num_qubits; ++i)
        g.qs[static_cast<std::size_t>(i)] = i;
    for (int i = 0; i < gate_param_count(kind); ++i)
        g.params[static_cast<std::size_t>(i)] = 0.37 * (i + 1);
    return g;
}

TEST(Gate, NamesAreUniqueAndLowercase)
{
    std::vector<std::string> names;
    for (GateKind k : kAllUnitary)
        names.push_back(gate_name(k));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Gate, ArityMatchesFactories)
{
    EXPECT_EQ(gate_arity(GateKind::H), 1);
    EXPECT_EQ(gate_arity(GateKind::CX), 2);
    EXPECT_EQ(gate_arity(GateKind::CCX), 3);
    EXPECT_EQ(gate_arity(GateKind::Barrier), 0);
    EXPECT_EQ(Gate::cx(0, 1).num_qubits, 2);
    EXPECT_EQ(Gate::ccx(0, 1, 2).num_qubits, 3);
}

TEST(Gate, AllUnitaryMatricesAreUnitary)
{
    for (GateKind k : kAllUnitary) {
        const Gate g = sample_gate(k);
        EXPECT_TRUE(g.matrix().is_unitary()) << gate_name(k);
    }
}

TEST(Gate, InverseComposesToIdentityUpToPhase)
{
    for (GateKind k : kAllUnitary) {
        const Gate g = sample_gate(k);
        const CMatrix prod = g.matrix() * g.inverse().matrix();
        EXPECT_TRUE(prod.equal_up_to_phase(
            CMatrix::identity(prod.rows())))
            << gate_name(k);
    }
}

TEST(Gate, DiagonalGatesHaveDiagonalMatrices)
{
    for (GateKind k : kAllUnitary) {
        if (!is_diagonal_gate(k))
            continue;
        const CMatrix m = sample_gate(k).matrix();
        for (std::size_t r = 0; r < m.rows(); ++r)
            for (std::size_t c = 0; c < m.cols(); ++c)
                if (r != c) {
                    EXPECT_NEAR(std::abs(m.at(r, c)), 0.0, 1e-12)
                        << gate_name(k);
                }
    }
}

TEST(Gate, CxMatrixFlipsTargetOnControlOne)
{
    const CMatrix m = Gate::cx(0, 1).matrix();
    // |10> -> |11>, |11> -> |10> (qubit 0 = MSB).
    EXPECT_EQ(m.at(3, 2), Complex{1});
    EXPECT_EQ(m.at(2, 3), Complex{1});
    EXPECT_EQ(m.at(0, 0), Complex{1});
    EXPECT_EQ(m.at(1, 1), Complex{1});
}

TEST(Gate, CrzIsControlledRz)
{
    const double th = 0.81;
    const CMatrix m = Gate::crz(0, 1, th).matrix();
    EXPECT_NEAR(std::abs(m.at(0, 0) - Complex{1}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m.at(2, 2) - std::polar(1.0, -th / 2)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m.at(3, 3) - std::polar(1.0, th / 2)), 0.0, 1e-12);
}

TEST(Gate, AxisClassification)
{
    EXPECT_EQ(Gate::rz(0, 0.3).axis_on(0), kAxisDiag);
    EXPECT_EQ(Gate::t(0).axis_on(0), kAxisDiag);
    EXPECT_EQ(Gate::x(0).axis_on(0), kAxisX);
    EXPECT_EQ(Gate::rx(0, 0.3).axis_on(0), kAxisX);
    EXPECT_EQ(Gate::ry(0, 0.3).axis_on(0), kAxisY);
    EXPECT_EQ(Gate::h(0).axis_on(0), 0);
    EXPECT_EQ(Gate::swap(0, 1).axis_on(0), 0);
    EXPECT_EQ(Gate::i(0).axis_on(0), kAxisAll);

    const Gate cx = Gate::cx(2, 5);
    EXPECT_EQ(cx.axis_on(2), kAxisDiag); // control
    EXPECT_EQ(cx.axis_on(5), kAxisX);    // target

    const Gate ccx = Gate::ccx(1, 2, 3);
    EXPECT_EQ(ccx.axis_on(1), kAxisDiag);
    EXPECT_EQ(ccx.axis_on(2), kAxisDiag);
    EXPECT_EQ(ccx.axis_on(3), kAxisX);

    const Gate rzz = Gate::rzz(0, 1, 0.2);
    EXPECT_EQ(rzz.axis_on(0), kAxisDiag);
    EXPECT_EQ(rzz.axis_on(1), kAxisDiag);
}

TEST(Gate, ActsOnChecksOperands)
{
    const Gate g = Gate::cx(3, 7);
    EXPECT_TRUE(g.acts_on(3));
    EXPECT_TRUE(g.acts_on(7));
    EXPECT_FALSE(g.acts_on(5));
}

TEST(Gate, ConditionedCopyKeepsOperands)
{
    const Gate g = Gate::x(2).conditioned_on(4, 1);
    EXPECT_EQ(g.cond_bit, 4);
    EXPECT_EQ(g.cond_value, 1);
    EXPECT_EQ(g.kind, GateKind::X);
    EXPECT_EQ(g.qs[0], 2);
}

TEST(Gate, EqualityComparesParams)
{
    EXPECT_EQ(Gate::rz(0, 0.5), Gate::rz(0, 0.5));
    EXPECT_FALSE(Gate::rz(0, 0.5) == Gate::rz(0, 0.6));
    EXPECT_FALSE(Gate::rz(0, 0.5) == Gate::rz(1, 0.5));
    EXPECT_FALSE(Gate::x(0) == Gate::x(0).conditioned_on(0));
}

TEST(Gate, ToStringRendersOperandsAndParams)
{
    EXPECT_EQ(Gate::cx(1, 3).to_string(), "cx q[1], q[3]");
    const std::string s = Gate::rz(2, 0.5).to_string();
    EXPECT_NE(s.find("rz(0.5"), std::string::npos);
    EXPECT_NE(s.find("q[2]"), std::string::npos);
}

TEST(Gate, U3CoversHadamardUpToPhase)
{
    using std::numbers::pi;
    const Gate u = Gate::u3(0, pi / 2, 0.0, pi);
    EXPECT_TRUE(u.matrix().equal_up_to_phase(Gate::h(0).matrix()));
}

TEST(Gate, SwapMatrixExchangesBasisStates)
{
    const CMatrix m = Gate::swap(0, 1).matrix();
    EXPECT_EQ(m.at(1, 2), Complex{1});
    EXPECT_EQ(m.at(2, 1), Complex{1});
}

TEST(Gate, MeasureCarriesClassicalBit)
{
    const Gate g = Gate::measure(3, 5);
    EXPECT_EQ(g.kind, GateKind::Measure);
    EXPECT_EQ(g.cbit, 5);
    EXPECT_FALSE(is_unitary_gate(g.kind));
}

} // namespace
