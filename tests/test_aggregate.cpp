/**
 * @file
 * Tests for the communication aggregation pass (paper §4.2 / Alg. 1):
 * structural invariants, the worked Figure-4 example, and the soundness
 * guarantee that block reordering preserves circuit semantics.
 */
#include <gtest/gtest.h>

#include "support/log.hpp"

#include <set>

#include "autocomm/aggregate.hpp"
#include "circuits/library.hpp"
#include "circuits/qft.hpp"
#include "partition/mappers.hpp"
#include "qir/decompose.hpp"
#include "qir/unitary.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace autocomm;
using namespace autocomm::pass;
using qir::Circuit;

hw::QubitMapping
fig4_map()
{
    std::vector<NodeId> nodes;
    for (int n : circuits::figure4_mapping())
        nodes.push_back(n);
    return hw::QubitMapping(nodes);
}

/** Every remote gate appears in exactly one block; absorbed gates are
 * disjoint from members and from other blocks. */
void
check_partition_invariant(const Circuit& c, const hw::QubitMapping& map,
                          const std::vector<CommBlock>& blocks)
{
    std::set<std::size_t> seen;
    std::size_t remote_total = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
        if (map.is_remote(c[i]))
            ++remote_total;

    std::size_t member_total = 0;
    for (const CommBlock& b : blocks) {
        EXPECT_FALSE(b.members.empty());
        EXPECT_TRUE(std::is_sorted(b.members.begin(), b.members.end()));
        EXPECT_TRUE(std::is_sorted(b.absorbed.begin(), b.absorbed.end()));
        for (std::size_t i : b.members) {
            EXPECT_TRUE(map.is_remote(c[i])) << "member " << i;
            EXPECT_TRUE(seen.insert(i).second) << "gate " << i << " twice";
            // Every member involves the hub and a qubit on remote_node.
            EXPECT_TRUE(c[i].acts_on(b.hub));
            const QubitId other =
                c[i].qs[0] == b.hub ? c[i].qs[1] : c[i].qs[0];
            EXPECT_EQ(map.node_of(other), b.remote_node);
            EXPECT_EQ(map.node_of(b.hub), b.hub_node);
        }
        for (std::size_t i : b.absorbed) {
            EXPECT_FALSE(map.is_remote(c[i])) << "absorbed remote " << i;
            EXPECT_TRUE(seen.insert(i).second) << "gate " << i << " twice";
            EXPECT_LT(i, b.members.back());
            EXPECT_GT(i, b.members.front());
        }
        ++member_total;
    }
    std::size_t members = 0;
    for (const CommBlock& b : blocks)
        members += b.members.size();
    EXPECT_EQ(members, remote_total);
}

TEST(Aggregate, SparseModeMakesOneBlockPerGate)
{
    const Circuit c = circuits::figure4_program();
    const auto map = fig4_map();
    AggregateOptions opts;
    opts.use_commutation = false;
    const auto blocks = aggregate(c, map, opts);
    EXPECT_EQ(blocks.size(), map.count_remote(c));
    for (const CommBlock& b : blocks) {
        EXPECT_EQ(b.members.size(), 1u);
        EXPECT_TRUE(b.absorbed.empty());
    }
    check_partition_invariant(c, map, blocks);
}

TEST(Aggregate, Figure4FormsBursts)
{
    const Circuit c = circuits::figure4_program();
    const auto map = fig4_map();
    const auto blocks = aggregate(c, map);
    check_partition_invariant(c, map, blocks);
    // Burst aggregation must beat sparse: fewer blocks than remote gates.
    EXPECT_LT(blocks.size(), map.count_remote(c));
    // The q2 <-> node A burst (the paper's q3/node-A pair) must exist with
    // at least 3 member gates.
    bool found_q2_burst = false;
    for (const CommBlock& b : blocks)
        if (b.hub == 2 && b.remote_node == 0 && b.members.size() >= 3)
            found_q2_burst = true;
    EXPECT_TRUE(found_q2_burst);
}

TEST(Aggregate, ReorderingPreservesSemantics_Figure4)
{
    const Circuit c = circuits::figure4_program();
    const auto map = fig4_map();
    const auto blocks = aggregate(c, map);
    std::vector<std::size_t> starts;
    const Circuit r = reorder_with_blocks(c, blocks, &starts);
    EXPECT_EQ(r.size(), c.size());
    EXPECT_TRUE(qir::circuits_equivalent(c, r));
    ASSERT_EQ(starts.size(), blocks.size());
}

TEST(Aggregate, ReorderingPreservesSemantics_SmallQft)
{
    const Circuit c = qir::decompose(circuits::make_qft(8));
    const auto map = hw::QubitMapping::contiguous(8, 2);
    const auto blocks = aggregate(c, map);
    check_partition_invariant(c, map, blocks);
    const Circuit r = reorder_with_blocks(c, blocks);
    EXPECT_TRUE(qir::circuits_equivalent(c, r));
}

TEST(Aggregate, ReorderingPreservesSemantics_RandomStress)
{
    // Random circuits over 8 qubits / 2 nodes: the reordered circuit must
    // always be unitary-equivalent to the original.
    support::Rng rng(2022);
    for (int trial = 0; trial < 12; ++trial) {
        Circuit c(8);
        for (int g = 0; g < 60; ++g) {
            const int kind = static_cast<int>(rng.next_below(6));
            const QubitId a = static_cast<QubitId>(rng.next_below(8));
            QubitId b = static_cast<QubitId>(rng.next_below(8));
            while (b == a)
                b = static_cast<QubitId>(rng.next_below(8));
            switch (kind) {
              case 0: c.cx(a, b); break;
              case 1: c.rz(a, rng.next_double()); break;
              case 2: c.h(a); break;
              case 3: c.t(a); break;
              case 4: c.cx(b, a); break;
              default: c.rx(a, rng.next_double()); break;
            }
        }
        const auto map = hw::QubitMapping::contiguous(8, 2);
        const auto blocks = aggregate(c, map);
        check_partition_invariant(c, map, blocks);
        const Circuit r = reorder_with_blocks(c, blocks);
        EXPECT_TRUE(qir::circuits_equivalent(c, r)) << "trial " << trial;
    }
}

TEST(Aggregate, QftBurstsGrowWithNodeSize)
{
    // With t qubits per node, QFT hubs accumulate ~2(t-1)+ remote CX per
    // block; larger nodes must produce larger maximal blocks.
    const Circuit c16 = qir::decompose(circuits::make_qft(16));
    const auto blocks4 =
        aggregate(c16, hw::QubitMapping::contiguous(16, 4));
    const auto blocks8 =
        aggregate(c16, hw::QubitMapping::contiguous(16, 8));
    std::size_t max4 = 0, max8 = 0;
    for (const auto& b : blocks4)
        max4 = std::max(max4, b.members.size());
    for (const auto& b : blocks8)
        max8 = std::max(max8, b.members.size());
    EXPECT_GT(max4, max8);
}

TEST(Aggregate, CommutationBeatsSparseOnQft)
{
    const Circuit c = qir::decompose(circuits::make_qft(20));
    const auto map = hw::QubitMapping::contiguous(20, 4);
    const auto burst = aggregate(c, map);
    AggregateOptions sparse;
    sparse.use_commutation = false;
    const auto single = aggregate(c, map, sparse);
    EXPECT_LT(burst.size(), single.size() / 3);
}

TEST(Aggregate, BarrierBreaksBlocks)
{
    // Two remote CX on the same pair, split by a barrier: two blocks.
    Circuit c(4);
    c.cx(0, 2).barrier().cx(0, 2);
    const auto map = hw::QubitMapping::contiguous(4, 2);
    const auto blocks = aggregate(c, map);
    EXPECT_EQ(blocks.size(), 2u);

    Circuit c2(4);
    c2.cx(0, 2).cx(0, 2);
    EXPECT_EQ(aggregate(c2, map).size(), 1u);
}

TEST(Aggregate, NonCommutingRemoteGateBreaksBlock)
{
    // CX(0,2), then CX(2,3)... wait gates within one node are local; use
    // a remote gate on a different pair that shares the hub's far qubit.
    Circuit c(6);
    const auto map = hw::QubitMapping::contiguous(6, 3); // {0,1},{2,3},{4,5}
    c.cx(0, 2);  // pair (0, node1)
    c.cx(4, 2);  // pair (4, node1) — shares target q2, commutes
    c.cx(0, 3);  // pair (0, node1) again
    const auto blocks = aggregate(c, map);
    // CX(4,2) shares q2 as target with CX(0,2): both X-type on q2, so the
    // q0 block may extend across it.
    bool has_two_gate_block = false;
    for (const auto& b : blocks)
        if (b.hub == 0 && b.members.size() == 2)
            has_two_gate_block = true;
    EXPECT_TRUE(has_two_gate_block);

    Circuit c2(6);
    c2.cx(0, 2); // pair (0, node1)
    c2.cx(2, 4); // q2 now a control: breaks X-axis context on q2...
    c2.cx(0, 2);
    const auto blocks2 = aggregate(c2, map);
    // ...but the interrupting gate is itself a complete block between the
    // two members, so iterative refinement nests it and the q0 burst
    // survives (both node1 comm qubits are in use while it runs).
    ASSERT_EQ(blocks2.size(), 2u);
    bool found_nested = false;
    for (std::size_t b = 0; b < blocks2.size(); ++b) {
        if (blocks2[b].hub == 0) {
            EXPECT_EQ(blocks2[b].members.size(), 2u);
            EXPECT_EQ(blocks2[b].children.size(), 1u);
        } else {
            EXPECT_NE(blocks2[b].parent, -1);
            found_nested = true;
        }
    }
    EXPECT_TRUE(found_nested);
}

TEST(Aggregate, NestingRespectsCommCapacity)
{
    // With comm_capacity 1 the same program cannot nest: sessions would
    // need two comm qubits on the shared node.
    Circuit c(6);
    const auto map = hw::QubitMapping::contiguous(6, 3);
    c.cx(0, 2).cx(2, 4).cx(0, 2);
    AggregateOptions opts;
    opts.comm_capacity = 1;
    const auto blocks = aggregate(c, map, opts);
    for (const auto& b : blocks) {
        EXPECT_EQ(b.parent, -1);
        EXPECT_TRUE(b.children.empty());
    }
}

TEST(Aggregate, NestedReorderingPreservesSemantics)
{
    Circuit c(6);
    const auto map = hw::QubitMapping::contiguous(6, 3);
    c.h(0).cx(0, 2).t(4).cx(2, 4).cx(0, 2).h(4).cx(2, 4).cx(0, 3);
    const auto blocks = aggregate(c, map);
    const Circuit r = reorder_with_blocks(c, blocks);
    EXPECT_TRUE(qir::circuits_equivalent(c, r));
}

TEST(Aggregate, AbsorbsLocalGatesInsideWindow)
{
    Circuit c(4);
    const auto map = hw::QubitMapping::contiguous(4, 2);
    c.cx(0, 2);
    c.h(2);      // local 1q on the remote target: not commuting (X vs H)
    c.cx(0, 2);
    const auto blocks = aggregate(c, map);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].members.size(), 2u);
    EXPECT_EQ(blocks[0].absorbed.size(), 1u);
    const Circuit r = reorder_with_blocks(c, blocks);
    EXPECT_TRUE(qir::circuits_equivalent(c, r));
}

TEST(Aggregate, HubTwoQubitLocalGateBreaksBlock)
{
    // A local CX acting on the hub between two remote gates cannot be
    // absorbed and does not commute: the block must split.
    Circuit c(4);
    const auto map = hw::QubitMapping::contiguous(4, 2);
    c.cx(0, 2);
    c.cx(1, 0); // local, touches hub q0 as target (X vs Diag: no commute)
    c.cx(0, 2);
    const auto blocks = aggregate(c, map);
    for (const auto& b : blocks)
        EXPECT_EQ(b.members.size(), 1u);
}

TEST(Aggregate, RejectsRemoteThreeQubitGate)
{
    Circuit c(4);
    c.ccx(0, 1, 3);
    const auto map = hw::QubitMapping::contiguous(4, 2);
    EXPECT_THROW(aggregate(c, map), support::UserError);
}

TEST(Aggregate, DeterministicOutput)
{
    const Circuit c = qir::decompose(circuits::make_qft(12));
    const auto map = hw::QubitMapping::contiguous(12, 3);
    const auto a = aggregate(c, map);
    const auto b = aggregate(c, map);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].members, b[i].members);
        EXPECT_EQ(a[i].hub, b[i].hub);
    }
}

void
expect_same_blocks(const std::vector<CommBlock>& a,
                   const std::vector<CommBlock>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].members, b[i].members) << "block " << i;
        EXPECT_EQ(a[i].absorbed, b[i].absorbed) << "block " << i;
        EXPECT_EQ(a[i].children, b[i].children) << "block " << i;
        EXPECT_EQ(a[i].parent, b[i].parent) << "block " << i;
        EXPECT_EQ(a[i].hub, b[i].hub) << "block " << i;
        EXPECT_EQ(a[i].hub_node, b[i].hub_node) << "block " << i;
        EXPECT_EQ(a[i].remote_node, b[i].remote_node) << "block " << i;
    }
}

// The parallel scan/refinement speculates against a frozen snapshot and
// validates before applying in the serial order, so its output must be
// bit-identical to the serial pass for every thread count — the
// determinism gate for the whole parallelization.
TEST(Aggregate, ParallelMatchesSerialExactly)
{
    struct Case
    {
        Circuit c;
        hw::QubitMapping map;
    };
    std::vector<Case> cases;
    // QFT: scan-dominated, dense gaps. MCTR: refinement-dominated, long
    // merge chains and nesting.
    cases.push_back({qir::decompose(circuits::make_qft(60)),
                     hw::QubitMapping::contiguous(60, 6)});
    const circuits::BenchmarkSpec mctr =
        circuits::spec_for({circuits::Family::MCTR}, 80, 8);
    cases.push_back({qir::decompose(circuits::make_benchmark(mctr, 2022)),
                     hw::QubitMapping::contiguous(80, 8)});

    for (const Case& cs : cases) {
        const auto serial = aggregate(cs.c, cs.map);
        for (std::size_t threads : {2u, 8u}) {
            support::ThreadPool pool(threads);
            const auto par = aggregate(cs.c, cs.map, {}, &pool);
            expect_same_blocks(serial, par);
        }
    }
}

} // namespace
