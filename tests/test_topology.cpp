/**
 * @file
 * Unit tests for link topologies: hand-computed hop-distance tables for
 * ring/grid/star, the all-to-all fallback, routing-table symmetry, the
 * hop-scaled EPR latency, and the machine-shape spec parser.
 */
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "hw/topology.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm::hw;
using autocomm::NodeId;
using autocomm::support::UserError;

TEST(Topology, NamesRoundTripThroughParse)
{
    for (Topology t : all_topologies()) {
        auto parsed = parse_topology(topology_name(t));
        ASSERT_TRUE(parsed.has_value()) << topology_name(t);
        EXPECT_EQ(*parsed, t);
    }
    EXPECT_EQ(parse_topology("RING"), Topology::Ring); // case-insensitive
    EXPECT_EQ(parse_topology("mesh"), Topology::Grid);
    EXPECT_EQ(parse_topology("all-to-all"), Topology::AllToAll);
    EXPECT_FALSE(parse_topology("torus").has_value());
}

TEST(Topology, AllToAllIsEverywhereHopOne)
{
    const RoutingTable t = RoutingTable::build(Topology::AllToAll, 6);
    for (NodeId a = 0; a < 6; ++a)
        for (NodeId b = 0; b < 6; ++b)
            EXPECT_EQ(t.hops(a, b), a == b ? 0 : 1);
    EXPECT_EQ(t.max_hops(), 1);
}

TEST(Topology, EmptyTableIsTheAllToAllFallback)
{
    const RoutingTable empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.hops(0, 0), 0);
    EXPECT_EQ(empty.hops(3, 7), 1);
    EXPECT_EQ(empty.max_hops(), 1);
}

TEST(Topology, RingMatchesHandComputedDistances)
{
    // 0-1-2-3-4-0: distance is min(|a-b|, 5-|a-b|).
    const RoutingTable t = RoutingTable::build(Topology::Ring, 5);
    EXPECT_EQ(t.hops(0, 1), 1);
    EXPECT_EQ(t.hops(0, 2), 2);
    EXPECT_EQ(t.hops(0, 3), 2);
    EXPECT_EQ(t.hops(0, 4), 1);
    EXPECT_EQ(t.hops(1, 4), 2);
    EXPECT_EQ(t.max_hops(), 2);

    const RoutingTable t6 = RoutingTable::build(Topology::Ring, 6);
    EXPECT_EQ(t6.hops(0, 3), 3); // antipodal
    EXPECT_EQ(t6.max_hops(), 3);

    // Two nodes: one link, not a double edge.
    const RoutingTable t2 = RoutingTable::build(Topology::Ring, 2);
    EXPECT_EQ(t2.hops(0, 1), 1);
}

TEST(Topology, GridMatchesHandComputedDistances)
{
    // 6 nodes -> 2 rows x 3 cols, row-major:
    //   0 1 2
    //   3 4 5
    ASSERT_EQ(grid_rows_for(6), 2);
    const RoutingTable t = RoutingTable::build(Topology::Grid, 6);
    EXPECT_EQ(t.hops(0, 1), 1);
    EXPECT_EQ(t.hops(0, 3), 1);
    EXPECT_EQ(t.hops(0, 4), 2);
    EXPECT_EQ(t.hops(0, 5), 3); // manhattan (0,0) -> (1,2)
    EXPECT_EQ(t.hops(2, 3), 3);
    EXPECT_EQ(t.max_hops(), 3);
}

TEST(Topology, RaggedGridLastRowStaysConnected)
{
    // 5 nodes -> 2 rows x 3 cols with a ragged last row:
    //   0 1 2
    //   3 4
    const RoutingTable t = RoutingTable::build(Topology::Grid, 5);
    EXPECT_EQ(t.hops(2, 4), 2); // 2 -> 1 -> 4
    EXPECT_EQ(t.hops(2, 3), 3);
    EXPECT_EQ(t.max_hops(), 3);
}

TEST(Topology, ExplicitGridRowsOverride)
{
    // 6 nodes forced into 1 row: a line 0-1-2-3-4-5.
    const RoutingTable line = RoutingTable::build(Topology::Grid, 6, 1);
    EXPECT_EQ(line.hops(0, 5), 5);
    EXPECT_EQ(line.max_hops(), 5);
}

TEST(Topology, StarMatchesHandComputedDistances)
{
    const RoutingTable t = RoutingTable::build(Topology::Star, 5);
    for (NodeId leaf = 1; leaf < 5; ++leaf)
        EXPECT_EQ(t.hops(0, leaf), 1);
    for (NodeId a = 1; a < 5; ++a)
        for (NodeId b = 1; b < 5; ++b)
            EXPECT_EQ(t.hops(a, b), a == b ? 0 : 2);
    EXPECT_EQ(t.max_hops(), 2);
}

TEST(Topology, TablesAreSymmetricWithZeroDiagonal)
{
    for (Topology topo : all_topologies()) {
        for (int n : {1, 2, 3, 5, 8, 9}) {
            const RoutingTable t = RoutingTable::build(topo, n);
            for (NodeId a = 0; a < n; ++a) {
                EXPECT_EQ(t.hops(a, a), 0);
                for (NodeId b = 0; b < n; ++b) {
                    EXPECT_EQ(t.hops(a, b), t.hops(b, a))
                        << topology_name(topo) << " n=" << n;
                    if (a != b) {
                        EXPECT_GE(t.hops(a, b), 1);
                    }
                }
            }
        }
    }
}

TEST(Topology, EprLatencyIsExactAtOneHopAndStrictlyMonotone)
{
    const LatencyModel lat;
    EXPECT_DOUBLE_EQ(lat.t_epr_hops(1), lat.t_epr);
    EXPECT_DOUBLE_EQ(lat.t_epr_hops(0), lat.t_epr); // degenerate floor
    for (int k = 1; k < 8; ++k)
        EXPECT_GT(lat.t_epr_hops(k + 1), lat.t_epr_hops(k));
    // k hops = k preparations + k-1 swap corrections.
    EXPECT_DOUBLE_EQ(lat.t_epr_hops(3),
                     3 * lat.t_epr + 2 * lat.t_swap_correct());
}

TEST(Topology, UnbuiltRoutingForDeclaredTopologyIsRejected)
{
    // Aggregate-initializing `topology` without build_routing() would
    // silently fall back to all-to-all hop counts; validate_routing (run
    // by pass::compile and the GP-TP baseline) must reject it instead.
    Machine m;
    m.num_nodes = 4;
    m.qubits_per_node = 4;
    m.topology = Topology::Ring;
    EXPECT_THROW(m.validate_routing(), UserError);
    m.build_routing();
    EXPECT_NO_THROW(m.validate_routing());

    Machine flat;
    flat.num_nodes = 4;
    EXPECT_NO_THROW(flat.validate_routing()); // all-to-all fallback exact
}

TEST(Topology, BuildRoutingRebuildsAfterResize)
{
    Machine m = Machine::homogeneous(4, 4, Topology::Ring);
    m.num_nodes = 8;
    m.build_routing(); // must drop the stale 4-node table, not throw
    EXPECT_EQ(m.hops(0, 4), 4);
    EXPECT_NO_THROW(m.validate_routing());
}

TEST(Topology, MachineHopsDefaultToAllToAll)
{
    Machine m;
    m.num_nodes = 4;
    m.qubits_per_node = 5;
    EXPECT_EQ(m.hops(0, 3), 1);
    EXPECT_DOUBLE_EQ(m.epr_latency(0, 3), m.latency.t_epr);

    m.topology = Topology::Ring;
    m.build_routing();
    EXPECT_EQ(m.hops(0, 2), 2);
    EXPECT_GT(m.epr_latency(0, 2), m.latency.t_epr);
}

TEST(Shape, ParseExpandsGroups)
{
    const std::vector<int> caps = parse_shape("4x10,2x30");
    ASSERT_EQ(caps.size(), 6u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(caps[static_cast<std::size_t>(i)], 10);
    EXPECT_EQ(caps[4], 30);
    EXPECT_EQ(caps[5], 30);
}

TEST(Shape, ParseAcceptsBareCapacities)
{
    const std::vector<int> caps = parse_shape("10,30,5");
    EXPECT_EQ(caps, (std::vector<int>{10, 30, 5}));
}

TEST(Shape, LabelRecompressesRuns)
{
    EXPECT_EQ(shape_label({10, 10, 10, 10, 30, 30}), "4x10,2x30");
    EXPECT_EQ(shape_label({7}), "1x7");
    EXPECT_EQ(shape_label(parse_shape("4x10,2x30")), "4x10,2x30");
}

TEST(Shape, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(parse_shape(""), UserError);
    EXPECT_THROW(parse_shape("0x5"), UserError);
    EXPECT_THROW(parse_shape("4x0"), UserError);
    EXPECT_THROW(parse_shape("axb"), UserError);
    EXPECT_THROW(parse_shape("4x"), UserError);
    EXPECT_THROW(parse_shape("x10"), UserError);
    EXPECT_THROW(parse_shape("4x10,,2x30"), UserError);
    EXPECT_THROW(parse_shape("-2x5"), UserError);
}

TEST(Shape, MachineFactories)
{
    const Machine hom = Machine::homogeneous(4, 10, Topology::Ring);
    EXPECT_EQ(hom.num_nodes, 4);
    EXPECT_EQ(hom.capacity(), 40);
    EXPECT_EQ(hom.capacity_of(3), 10);
    EXPECT_EQ(hom.hops(0, 2), 2); // routing built by the factory

    const Machine het = Machine::from_capacities({8, 8, 30});
    EXPECT_EQ(het.num_nodes, 3);
    EXPECT_EQ(het.capacity(), 46);
    EXPECT_EQ(het.capacity_of(0), 8);
    EXPECT_EQ(het.capacity_of(2), 30);
    EXPECT_EQ(het.capacities(), (std::vector<int>{8, 8, 30}));
    EXPECT_EQ(het.hops(0, 2), 1); // all-to-all default

    EXPECT_THROW(Machine::from_capacities({}), UserError);
    EXPECT_THROW(Machine::from_capacities({5, 0}), UserError);
    EXPECT_THROW(Machine::homogeneous(0, 5), UserError);
}

TEST(Topology, PathsFollowTheRoutedNextHops)
{
    // Ring 0-1-2-3-4-5-0: the route to an antipode walks one side.
    const RoutingTable ring = RoutingTable::build(Topology::Ring, 6);
    const std::vector<NodeId> p = ring.path(0, 3);
    ASSERT_EQ(p.size(), 4u); // 3 hops inclusive of both ends
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_EQ(ring.hops(p[i], p[i + 1]), 1);

    // Star: every leaf-leaf route swaps through hub 0.
    const RoutingTable star = RoutingTable::build(Topology::Star, 5);
    EXPECT_EQ(star.path(2, 4), (std::vector<NodeId>{2, 0, 4}));
    EXPECT_EQ(star.path(0, 3), (std::vector<NodeId>{0, 3}));

    // Trivial paths.
    EXPECT_EQ(star.path(2, 2), (std::vector<NodeId>{2}));
    const RoutingTable empty;
    EXPECT_EQ(empty.path(1, 7), (std::vector<NodeId>{1, 7}));
    EXPECT_EQ(empty.path(4, 4), (std::vector<NodeId>{4}));
}

TEST(Topology, PathLengthMatchesHopsEverywhere)
{
    for (Topology t : all_topologies()) {
        const RoutingTable table = RoutingTable::build(t, 9);
        for (NodeId a = 0; a < 9; ++a)
            for (NodeId b = 0; b < 9; ++b) {
                const std::vector<NodeId> p = table.path(a, b);
                EXPECT_EQ(static_cast<int>(p.size()) - 1,
                          table.hops(a, b))
                    << topology_name(t) << " " << a << "->" << b;
                EXPECT_EQ(p.front(), a);
                EXPECT_EQ(p.back(), b);
            }
    }
}

TEST(Topology, MaxFidelityBuildMatchesBfsOnUniformLinks)
{
    autocomm::noise::LinkModel uniform;
    uniform.fidelity = 0.93;
    for (Topology t : all_topologies()) {
        const RoutingTable bfs = RoutingTable::build(t, 8);
        const RoutingTable weighted =
            RoutingTable::build_max_fidelity(t, 8, uniform);
        for (NodeId a = 0; a < 8; ++a)
            for (NodeId b = 0; b < 8; ++b)
                EXPECT_EQ(weighted.hops(a, b), bfs.hops(a, b))
                    << topology_name(t) << " " << a << "->" << b;
    }
}

TEST(Topology, MaxFidelityBuildDetoursAroundADegradedLink)
{
    // Grid 2x2 (0-1 / 2-3): degrade the 0-1 edge; the best 0 -> 1 route
    // becomes 0-2-3-1.
    autocomm::noise::LinkModel link;
    link.fidelity = 0.99;
    link.set_link_fidelity(0, 1, 0.55);
    const RoutingTable t =
        RoutingTable::build_max_fidelity(Topology::Grid, 4, link, 2);
    EXPECT_EQ(t.hops(0, 1), 3);
    EXPECT_EQ(t.path(0, 1), (std::vector<NodeId>{0, 2, 3, 1}));
    EXPECT_EQ(t.hops(0, 2), 1);
    EXPECT_EQ(t.hops(2, 3), 1);
}

} // namespace
