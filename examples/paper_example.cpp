/**
 * @file
 * The paper's worked example (Figures 4, 8, 11): a small arithmetic-style
 * program on three nodes. This example walks the three AutoComm stages on
 * it and prints each intermediate result, mirroring the paper's Figure 8
 * (aggregation) and Figure 11 (assignment + schedule) narrative.
 */
#include <cstdio>

#include "autocomm/aggregate.hpp"
#include "autocomm/assign.hpp"
#include "autocomm/lower.hpp"
#include "autocomm/pipeline.hpp"
#include "baseline/ferrari.hpp"
#include "circuits/library.hpp"

int
main()
{
    using namespace autocomm;

    const qir::Circuit program = circuits::figure4_program();
    std::vector<NodeId> nodes;
    for (int n : circuits::figure4_mapping())
        nodes.push_back(n);
    const hw::QubitMapping mapping{nodes};
    hw::Machine machine;
    machine.num_nodes = 3;
    machine.qubits_per_node = 3;

    std::puts("== the Figure-4 program ==");
    std::fputs(program.to_string().c_str(), stdout);
    std::printf("nodes: A={q0,q1} B={q2,q3,q4} C={q5,q6}; remote gates: "
                "%zu\n\n",
                mapping.count_remote(program));

    // Stage 1+2: aggregation and assignment, shown block by block.
    const pass::CompileResult r = pass::compile(program, mapping, machine);
    std::puts("== burst blocks (aggregation -> assignment) ==");
    for (const auto& blk : r.blocks)
        std::printf("  %s\n", blk.to_string(program).c_str());

    // Stage 3: schedule.
    std::printf("\n== schedule ==\n");
    std::printf("  EPR pairs: %zu, teleports: %zu, fused links: %zu\n",
                r.schedule.epr_pairs, r.schedule.teleports,
                r.schedule.fused_links);
    std::printf("  makespan: %.1f CX-units\n", r.schedule.makespan);

    const auto base =
        baseline::compile_ferrari(program, mapping, machine);
    const auto f = baseline::relative_factors(base, r);
    std::printf("\nvs per-CX baseline: %.2fx fewer communications, "
                "%.2fx faster (paper's example: 2.4x latency saving)\n",
                f.improv_factor, f.lat_dec_factor);

    // Bonus: lower to the physical machine and show the real protocol.
    const qir::Circuit phys =
        pass::lower_to_physical(program, mapping, machine, r);
    std::printf("\nlowered physical circuit: %d qubits, %zu operations "
                "(%zu measurements)\n",
                phys.num_qubits(), phys.size(),
                phys.stats().measurements);
    return 0;
}
