/**
 * @file
 * Quickstart: compile a distributed QFT with AutoComm and print what the
 * framework did — the burst blocks it found, the schemes it picked, and
 * the communication/latency savings over the per-gate baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "autocomm/pipeline.hpp"
#include "baseline/ferrari.hpp"
#include "circuits/qft.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"

int
main()
{
    using namespace autocomm;

    // 1. A program too big for one device: 32-qubit QFT.
    const qir::Circuit logical = circuits::make_qft(32);
    const qir::Circuit program = qir::decompose(logical);
    std::printf("program: %d qubits, %zu gates (%zu CX)\n",
                program.num_qubits(), program.stats().total_gates,
                program.stats().cx_gates);

    // 2. A distributed machine: 4 nodes x 8 data qubits, 2 comm qubits
    //    per node (the paper's near-term assumption).
    hw::Machine machine;
    machine.num_nodes = 4;
    machine.qubits_per_node = 8;

    // 3. Map qubits to nodes with the OEE graph partitioner.
    const hw::QubitMapping mapping = partition::oee_map(program, 4);
    std::printf("remote CX under OEE mapping: %zu\n",
                mapping.count_remote(program));

    // 4. Compile with AutoComm (aggregation + hybrid assignment +
    //    burst-greedy scheduling) and with the per-CX baseline.
    const pass::CompileResult result =
        pass::compile(program, mapping, machine);
    const pass::CompileResult baseline =
        baseline::compile_ferrari(program, mapping, machine);

    std::printf("\nAutoComm found %zu burst blocks:\n",
                result.blocks.size());
    std::size_t cat = 0, tp = 0, largest = 0;
    for (const auto& blk : result.blocks) {
        (blk.scheme == pass::Scheme::Cat ? cat : tp) += 1;
        largest = std::max(largest, blk.members.size());
    }
    std::printf("  %zu Cat-Comm blocks, %zu TP-Comm blocks\n", cat, tp);
    std::printf("  largest burst: %zu remote CX in one block\n", largest);

    const auto f = baseline::relative_factors(baseline, result);
    std::printf("\ncommunication: %zu EPR pairs (baseline %zu) -> %.2fx\n",
                result.metrics.total_comms, baseline.metrics.total_comms,
                f.improv_factor);
    std::printf("latency:       %.0f CX-units (baseline %.0f) -> %.2fx\n",
                result.schedule.makespan, baseline.schedule.makespan,
                f.lat_dec_factor);
    return 0;
}
