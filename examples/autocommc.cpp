/**
 * @file
 * `autocommc` — command-line driver: compile an OpenQASM 2.0 program (or a
 * named built-in benchmark) for a distributed machine and print the full
 * compilation report. The adoption path for a downstream user who just has
 * a circuit file.
 *
 * Usage:
 *   autocommc --qasm FILE --nodes K [options]
 *   autocommc --bench FAMILY --qubits N --nodes K [options]
 *
 * Options:
 *   --qasm FILE        read an OpenQASM 2.0 subset file
 *   --bench NAME       MCTR | RCA | QFT | BV | QAOA | UCCSD
 *   --qubits N         benchmark width (required with --bench)
 *   --nodes K          number of quantum nodes (required)
 *   --mapping M        oee (default) | contiguous | roundrobin
 *   --no-tp            Cat-Comm only assignment
 *   --no-commute       disable commutation-based aggregation
 *   --greedy           plain greedy schedule (no prefetch/fusion)
 *   --blocks           print every burst block
 *   --emit-physical    print the lowered physical circuit as QASM
 *   --baseline         also run the per-CX baseline and print factors
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "autocomm/lower.hpp"
#include "autocomm/pipeline.hpp"
#include "baseline/ferrari.hpp"
#include "circuits/library.hpp"
#include "partition/mappers.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "qir/qasm.hpp"
#include "support/log.hpp"

namespace {

using namespace autocomm;

[[noreturn]] void
usage(const char* msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n", msg);
    std::fprintf(stderr,
                 "usage: autocommc (--qasm FILE | --bench NAME --qubits N) "
                 "--nodes K\n"
                 "       [--mapping oee|contiguous|roundrobin] [--no-tp]\n"
                 "       [--no-commute] [--greedy] [--blocks] "
                 "[--emit-physical] [--baseline]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string qasm_file, bench_name, mapping_name = "oee";
    int qubits = 0, nodes = 0;
    pass::CompileOptions opts;
    bool show_blocks = false, emit_physical = false, run_baseline = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                usage("missing argument value");
            return argv[++i];
        };
        if (a == "--qasm")
            qasm_file = next();
        else if (a == "--bench")
            bench_name = next();
        else if (a == "--qubits")
            qubits = std::atoi(next());
        else if (a == "--nodes")
            nodes = std::atoi(next());
        else if (a == "--mapping")
            mapping_name = next();
        else if (a == "--no-tp")
            opts.assign.allow_tp = false;
        else if (a == "--no-commute")
            opts.aggregate.use_commutation = false;
        else if (a == "--greedy") {
            opts.schedule.epr_prefetch = false;
            opts.schedule.tp_fusion = false;
        } else if (a == "--blocks")
            show_blocks = true;
        else if (a == "--emit-physical")
            emit_physical = true;
        else if (a == "--baseline")
            run_baseline = true;
        else
            usage(("unknown option " + a).c_str());
    }
    if (nodes <= 0)
        usage("--nodes is required");
    if (qasm_file.empty() == bench_name.empty())
        usage("exactly one of --qasm / --bench is required");

    try {
        qir::Circuit logical;
        if (!qasm_file.empty()) {
            std::ifstream in(qasm_file);
            if (!in)
                support::fatal("cannot open %s", qasm_file.c_str());
            std::ostringstream text;
            text << in.rdbuf();
            logical = qir::from_qasm(text.str());
        } else {
            circuits::Family fam;
            if (bench_name == "MCTR")
                fam = circuits::Family::MCTR;
            else if (bench_name == "RCA")
                fam = circuits::Family::RCA;
            else if (bench_name == "QFT")
                fam = circuits::Family::QFT;
            else if (bench_name == "BV")
                fam = circuits::Family::BV;
            else if (bench_name == "QAOA")
                fam = circuits::Family::QAOA;
            else if (bench_name == "UCCSD")
                fam = circuits::Family::UCCSD;
            else
                usage("unknown benchmark family");
            if (qubits <= 0)
                usage("--qubits is required with --bench");
            logical = circuits::make_benchmark({fam, qubits, nodes});
        }

        const qir::Circuit program = qir::decompose(logical);
        hw::Machine machine;
        machine.num_nodes = nodes;
        machine.qubits_per_node =
            (program.num_qubits() + nodes - 1) / nodes;

        hw::QubitMapping mapping;
        if (mapping_name == "oee")
            mapping = partition::oee_map(program, nodes);
        else if (mapping_name == "contiguous")
            mapping = partition::contiguous_map(program.num_qubits(), nodes);
        else if (mapping_name == "roundrobin")
            mapping =
                partition::round_robin_map(program.num_qubits(), nodes);
        else
            usage("unknown mapping strategy");

        const auto stats = program.stats();
        std::printf("program: %d qubits, %zu gates (%zu CX), depth %zu\n",
                    program.num_qubits(), stats.total_gates,
                    stats.cx_gates, stats.depth);
        std::printf("machine: %d nodes x %d data qubits + %d comm qubits\n",
                    machine.num_nodes, machine.qubits_per_node,
                    machine.comm_qubits_per_node);
        std::printf("mapping (%s): %zu remote CX\n", mapping_name.c_str(),
                    mapping.count_remote(program));

        const pass::CompileResult r =
            pass::compile(program, mapping, machine, opts);
        std::printf("\nAutoComm: %zu blocks, %zu communications "
                    "(%zu TP / %zu Cat), peak %.1f REM-CX/comm\n",
                    r.metrics.num_blocks, r.metrics.total_comms,
                    r.metrics.tp_comms, r.metrics.cat_comms,
                    r.metrics.peak_rem_cx);
        std::printf("schedule: makespan %.1f CX-units, %zu EPR pairs, "
                    "%zu teleports, %zu fused links\n",
                    r.schedule.makespan, r.schedule.epr_pairs,
                    r.schedule.teleports, r.schedule.fused_links);

        if (show_blocks)
            for (const auto& blk : r.blocks)
                std::printf("  %s\n", blk.to_string(program).c_str());

        if (run_baseline) {
            const auto base =
                baseline::compile_ferrari(program, mapping, machine);
            const auto f = baseline::relative_factors(base, r);
            std::printf("\nbaseline: %zu communications, makespan %.1f\n",
                        base.metrics.total_comms, base.schedule.makespan);
            std::printf("improv. factor %.2fx, LAT-DEC factor %.2fx\n",
                        f.improv_factor, f.lat_dec_factor);
        }

        if (emit_physical) {
            const qir::Circuit phys =
                pass::lower_to_physical(program, mapping, machine, r);
            std::fputs(qir::to_qasm(phys).c_str(), stdout);
        }
        return 0;
    } catch (const support::UserError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
