/**
 * @file
 * Domain example: distributed QAOA for MaxCut (one of the paper's
 * motivating near-term workloads). Sweeps the number of nodes for a fixed
 * problem and shows how AutoComm's advantage and the mapping quality
 * evolve — a miniature of the paper's §5.5 sensitivity study.
 */
#include <cstdio>

#include "autocomm/pipeline.hpp"
#include "baseline/ferrari.hpp"
#include "baseline/gptp.hpp"
#include "circuits/qaoa.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace autocomm;

    // A 48-vertex random MaxCut instance at the paper's edge density.
    const circuits::MaxCutInstance inst =
        circuits::paper_density_maxcut(48, /*seed=*/7);
    const qir::Circuit program =
        qir::decompose(circuits::make_qaoa(inst));
    std::printf("QAOA MaxCut: %d vertices, %zu edges, %zu gates\n\n",
                inst.num_vertices, inst.edges.size(),
                program.stats().total_gates);

    support::Table t({"#nodes", "REM CX", "AutoComm comms", "improv",
                      "GP-TP comms", "vs GP-TP", "latency [CX]"});
    for (int nodes : {2, 4, 8, 16}) {
        hw::Machine machine;
        machine.num_nodes = nodes;
        machine.qubits_per_node = (48 + nodes - 1) / nodes;
        const hw::QubitMapping mapping =
            partition::oee_map(program, nodes);

        const auto ac = pass::compile(program, mapping, machine);
        const auto fe =
            baseline::compile_ferrari(program, mapping, machine);
        const auto gp =
            baseline::compile_gptp(program, mapping, machine);

        t.start_row();
        t.add(nodes);
        t.add(mapping.count_remote(program));
        t.add(ac.metrics.total_comms);
        t.add(static_cast<double>(fe.metrics.total_comms) /
                  static_cast<double>(ac.metrics.total_comms),
              2);
        t.add(gp.total_comms);
        t.add(static_cast<double>(gp.total_comms) /
                  static_cast<double>(ac.metrics.total_comms),
              2);
        t.add(ac.schedule.makespan, 0);
    }
    t.print();
    std::puts("\nmore nodes -> more remote ZZ interactions -> more "
              "communication; AutoComm's RZZ bursts keep the growth "
              "sub-linear in remote gates.");
    return 0;
}
