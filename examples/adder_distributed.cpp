/**
 * @file
 * Domain example: a distributed ripple-carry adder, end to end — the
 * workload class the paper's Figure 4 is extracted from. Compiles the
 * Cuccaro adder across two nodes, lowers it to the physical machine
 * (EPR pairs, cat-entanglers, teleports, feed-forward corrections), and
 * simulates the physical circuit to verify it really adds.
 */
#include <cstdio>

#include "autocomm/lower.hpp"
#include "autocomm/pipeline.hpp"
#include "circuits/rca.hpp"
#include "comm/protocols.hpp"
#include "partition/oee.hpp"
#include "qir/decompose.hpp"
#include "qir/unitary.hpp"
#include "support/rng.hpp"

int
main()
{
    using namespace autocomm;

    // 3-bit adder (8 qubits), distributed over two 4-qubit nodes.
    const int total = 8;
    const qir::Circuit adder = qir::decompose(circuits::make_rca(total));
    hw::Machine machine;
    machine.num_nodes = 2;
    machine.qubits_per_node = 4;
    const hw::QubitMapping mapping = partition::oee_map(adder, 2);

    const pass::CompileResult r = pass::compile(adder, mapping, machine);
    std::printf("adder: %zu gates, %zu remote CX -> %zu communications "
                "(%.1f CX-units latency)\n",
                adder.size(), mapping.count_remote(adder),
                r.metrics.total_comms, r.schedule.makespan);

    const qir::Circuit phys =
        pass::lower_to_physical(adder, mapping, machine, r);
    std::printf("physical circuit: %d qubits (incl. 4 comm), %zu ops\n\n",
                phys.num_qubits(), phys.size());

    // Verify on the physical machine: a + b for a few operand pairs.
    // Layout: q0=cin, (b_i, a_i) interleaved, q7=carry-out.
    const comm::PhysicalLayout layout(machine, mapping);
    support::Rng rng(1);
    const int m = circuits::rca_operand_bits(total);
    int checked = 0, correct = 0;
    for (int a = 0; a < (1 << m); ++a) {
        for (int b = 0; b < (1 << m); ++b) {
            qir::Circuit init(phys.num_qubits(), 0);
            for (int i = 0; i < m; ++i) {
                if ((b >> i) & 1)
                    init.x(layout.data(1 + 2 * i));
                if ((a >> i) & 1)
                    init.x(layout.data(2 + 2 * i));
            }
            qir::Statevector sv(phys.num_qubits(), 0);
            sv.run(init, rng);
            sv.run(phys, rng);

            int sum = 0;
            for (int i = 0; i < m; ++i)
                if (sv.prob_one(layout.data(1 + 2 * i)) > 0.5)
                    sum |= 1 << i;
            if (sv.prob_one(layout.data(2 * m + 1)) > 0.5)
                sum |= 1 << m;
            ++checked;
            if (sum == a + b)
                ++correct;
            else
                std::printf("MISMATCH: %d + %d gave %d\n", a, b, sum);
        }
    }
    std::printf("verified %d/%d operand pairs on the distributed "
                "machine\n",
                correct, checked);
    return correct == checked ? 0 : 1;
}
