#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the test suite.
# Mirrors .github/workflows/ci.yml so the same command works locally.
#
# Extra cmake args pass through, e.g. the sanitizer job:
#   ci/run.sh -DCMAKE_BUILD_TYPE=Debug -DAUTOCOMM_SANITIZE=ON
# or equivalently: AUTOCOMM_SANITIZE=1 ci/run.sh
set -euo pipefail
cd "$(dirname "$0")/.."

extra=()
if [[ "${AUTOCOMM_SANITIZE:-0}" != 0 ]]; then
    extra+=(-DCMAKE_BUILD_TYPE=Debug -DAUTOCOMM_SANITIZE=ON)
fi

cmake -B build -S . "${extra[@]}" "$@"
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
