#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the test suite.
# Mirrors .github/workflows/ci.yml so the same command works locally.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
